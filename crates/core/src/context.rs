//! Shared per-data-graph computation caches.
//!
//! A [`GraphContext`] bundles the two caches of expensive graph-wide
//! precomputations the pipeline repeats across a query batch:
//!
//! * [`neursc_match::ProfileCache`] — `all_profiles(G, r)` used by local
//!   pruning (the `O(|G|)` part of candidate filtering);
//! * [`neursc_gnn::FeatureCache`] — `init_features(G)` used when a variant
//!   featurizes the whole data graph (`NeurSC w/o SE`).
//!
//! Both key by graph content fingerprint, so one context can serve any
//! number of data graphs and a rebuilt graph can never see stale entries.
//! The context is `Sync`; the batched entry points
//! ([`crate::NeurSc::estimate_batch`], [`crate::NeurSc::fit`]) share one
//! across their worker threads.

use crate::faults::FaultPlan;
use neursc_gnn::FeatureCache;
use neursc_match::ProfileCache;

/// Shared caches for estimation/training against one or more data graphs.
#[derive(Debug, Default)]
pub struct GraphContext {
    /// Data-graph vertex-profile cache (local pruning).
    pub profiles: ProfileCache,
    /// Data-graph feature-matrix cache (whole-graph featurization).
    pub features: FeatureCache,
    /// Fault-injection plan consulted by the batched entry points (empty by
    /// default — see [`crate::faults`]).
    pub faults: FaultPlan,
}

impl GraphContext {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context carrying a fault-injection plan.
    pub fn with_faults(faults: FaultPlan) -> Self {
        GraphContext {
            faults,
            ..Self::default()
        }
    }

    /// Drops all cached entries from both caches.
    pub fn clear(&self) {
        self.profiles.clear();
        self.features.clear();
    }
}
