//! The Wasserstein discriminator `f_ω` (paper §5.5).
//!
//! A 3-layer MLP critic whose weights are clamped to `[-clamp, clamp]`
//! (Kantorovich–Rubinstein duality, WGAN-style). The adversarial loss is
//! Eq. 9:
//!
//! ```text
//! L_w(q, G_sub) = Σ_{u ∈ V'(q)} f_ω(h_u) − Σ_{v ∈ V'(G_sub)} f_ω(h_v)
//! ```
//!
//! over correspondence sets `V'(q)`, `V'(G_sub)` chosen with the candidate
//! sets: query vertices in ascending `f_ω(h_u)` order each claim the
//! unclaimed candidate `v ∈ CS(u)` maximizing `f_ω(h_v)`; when all of
//! `CS(u)` is claimed, an earlier query vertex is re-assigned to an
//! alternative candidate to free one (the paper's "change the corresponding
//! vertex of preselected query vertex"); if no reassignment exists (can
//! happen once substructures are size-capped) the best candidate is shared.

use crate::config::NeurScConfig;
use neursc_nn::layers::{Activation, Mlp};
use neursc_nn::{ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// The critic network `f_ω`.
#[derive(Debug, Clone)]
pub struct Discriminator {
    /// 3-layer MLP `rep_dim → h → h → 1`.
    pub mlp: Mlp,
    /// Clamp box half-width (paper: 0.01).
    pub clamp: f32,
}

impl Discriminator {
    /// Allocates the critic per `cfg`.
    pub fn new(store: &mut ParamStore, cfg: &NeurScConfig, rng: &mut StdRng) -> Self {
        let mlp = Mlp::new(
            store,
            &[cfg.rep_dim(), cfg.disc_hidden, cfg.disc_hidden, 1],
            Activation::Relu,
            Activation::Identity,
            rng,
        );
        Discriminator {
            mlp,
            clamp: cfg.clamp,
        }
    }

    /// `f_ω` scores for a matrix of representations: `[n, rep] → [n, 1]`.
    pub fn score(&self, tape: &mut Tape, store: &ParamStore, h: Var) -> Var {
        self.mlp.forward(tape, store, h)
    }

    /// Parameter ids (`ω`) — the set that gets clamped and stepped by the
    /// discriminator optimizer.
    pub fn params(&self) -> Vec<ParamId> {
        self.mlp.params()
    }

    /// Clamps `ω` into its box (call after every discriminator update).
    pub fn clamp_weights(&self, store: &mut ParamStore) {
        neursc_nn::optim::clamp_params(store, &self.params(), -self.clamp, self.clamp);
    }
}

/// Chooses the correspondence vertex sets `V'(q)`, `V'(G_sub)` (§5.5).
///
/// * `f_q[u]` — critic scores of query vertices;
/// * `f_s[v]` — critic scores of substructure vertices (local ids);
/// * `local_cs[u]` — component-local candidate set of query vertex `u`.
///
/// Returns `(queries, data)` index lists of equal length: `data[i]` is the
/// partner of `queries[i]`.
pub fn select_correspondence(
    f_q: &[f32],
    f_s: &[f32],
    local_cs: &[Vec<u32>],
) -> (Vec<u32>, Vec<u32>) {
    let nq = f_q.len();
    // Query vertices in ascending f_ω(h_u) order.
    let mut order: Vec<u32> = (0..nq as u32).collect();
    order.sort_by(|&a, &b| f_q[a as usize].total_cmp(&f_q[b as usize]).then(a.cmp(&b)));

    let mut owner: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut assigned: Vec<Option<u32>> = vec![None; nq];

    for &u in &order {
        assign(u, f_s, local_cs, &mut owner, &mut assigned, 0);
    }

    let mut qs = Vec::with_capacity(nq);
    let mut ds = Vec::with_capacity(nq);
    for &u in &order {
        if let Some(v) = assigned[u as usize] {
            qs.push(u);
            ds.push(v);
        }
    }
    (qs, ds)
}

/// Tries to give `u` its best free candidate; on exhaustion, recursively
/// re-assigns one current owner (depth-limited), falling back to sharing.
fn assign(
    u: u32,
    f_s: &[f32],
    local_cs: &[Vec<u32>],
    owner: &mut std::collections::HashMap<u32, u32>,
    assigned: &mut Vec<Option<u32>>,
    depth: usize,
) -> bool {
    // Candidates of u sorted by descending critic score.
    let mut cands: Vec<u32> = local_cs[u as usize].clone();
    cands.sort_by(|&a, &b| f_s[b as usize].total_cmp(&f_s[a as usize]).then(a.cmp(&b)));
    // First pass: a free candidate.
    for &v in &cands {
        if let std::collections::hash_map::Entry::Vacant(slot) = owner.entry(v) {
            slot.insert(u);
            assigned[u as usize] = Some(v);
            return true;
        }
    }
    // Second pass: evict an owner who has an alternative (augmenting step).
    if depth < 4 {
        for &v in &cands {
            let prev = owner[&v];
            owner.insert(v, u);
            assigned[u as usize] = Some(v);
            assigned[prev as usize] = None;
            if assign(prev, f_s, local_cs, owner, assigned, depth + 1) {
                return true;
            }
            // Roll back the eviction.
            assigned[prev as usize] = Some(v);
            owner.insert(v, prev);
            assigned[u as usize] = None;
        }
    }
    // Fallback: share the best-scored candidate.
    if let Some(&v) = cands.first() {
        assigned[u as usize] = Some(v);
        return true;
    }
    false
}

/// The unconstrained correspondence selection of Gao et al. \[21\] that
/// §5.5 improves upon: pick the query vertices minimizing `f_ω(h_u)` and —
/// independently, ignoring candidate sets — the data vertices maximizing
/// `f_ω(h_v)`. Used by the `NeurSC-UNC` ablation (DESIGN.md §5).
pub fn select_correspondence_unconstrained(f_q: &[f32], f_s: &[f32]) -> (Vec<u32>, Vec<u32>) {
    let k = f_q.len().min(f_s.len());
    let mut qs: Vec<u32> = (0..f_q.len() as u32).collect();
    qs.sort_by(|&a, &b| f_q[a as usize].total_cmp(&f_q[b as usize]).then(a.cmp(&b)));
    qs.truncate(k);
    let mut ds: Vec<u32> = (0..f_s.len() as u32).collect();
    ds.sort_by(|&a, &b| f_s[b as usize].total_cmp(&f_s[a as usize]).then(a.cmp(&b)));
    ds.truncate(k);
    (qs, ds)
}

/// Eq. 9 on the tape: `L_w = Σ f_ω(h_u) − Σ f_ω(h_v)` over the selected
/// correspondence rows of the critic score columns `f_q_col`/`f_s_col`
/// (`[n, 1]` vars).
pub fn wasserstein_loss(
    tape: &mut Tape,
    f_q_col: Var,
    f_s_col: Var,
    queries: &[u32],
    data: &[u32],
) -> Var {
    assert_eq!(queries.len(), data.len());
    let fq_sel = tape.index_select(f_q_col, queries);
    let fs_sel = tape.index_select(f_s_col, data);
    let sq = tape.sum(fq_sel);
    let ss = tape.sum(fs_sel);
    tape.sub(sq, ss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neursc_nn::Tensor;
    use rand::SeedableRng;

    #[test]
    fn selection_prefers_high_scores_within_candidates() {
        // u0's candidates {0,1}: scores 0.1, 0.9 → picks 1.
        // u1's candidates {1,2}: 1 taken → picks 2.
        let f_q = [0.0, 1.0];
        let f_s = [0.1, 0.9, 0.5];
        let cs = vec![vec![0, 1], vec![1, 2]];
        let (qs, ds) = select_correspondence(&f_q, &f_s, &cs);
        assert_eq!(qs, vec![0, 1]);
        assert_eq!(ds, vec![1, 2]);
    }

    #[test]
    fn selection_order_is_ascending_critic_score() {
        // u1 has smaller f_q, so it picks first and wins the contested best.
        let f_q = [0.9, 0.1];
        let f_s = [1.0, 0.2];
        let cs = vec![vec![0, 1], vec![0, 1]];
        let (qs, ds) = select_correspondence(&f_q, &f_s, &cs);
        assert_eq!(qs, vec![1, 0]);
        assert_eq!(ds, vec![0, 1]);
    }

    #[test]
    fn reassignment_frees_a_contested_candidate() {
        // u0 picks first (lowest f_q) and would take v0; but u1's only
        // candidate is v0, forcing a reassignment of u0 to v1.
        let f_q = [0.0, 1.0];
        let f_s = [0.9, 0.8];
        let cs = vec![vec![0, 1], vec![0]];
        let (qs, ds) = select_correspondence(&f_q, &f_s, &cs);
        assert_eq!(qs.len(), 2);
        // All query vertices matched, injectively.
        let mut sorted = ds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 2, "expected injective assignment, got {ds:?}");
        // u1 must own v0.
        let idx_u1 = qs.iter().position(|&u| u == 1).unwrap();
        assert_eq!(ds[idx_u1], 0);
    }

    #[test]
    fn sharing_fallback_when_matching_impossible() {
        // Two query vertices, one candidate each, the same one.
        let f_q = [0.0, 1.0];
        let f_s = [0.5];
        let cs = vec![vec![0], vec![0]];
        let (qs, ds) = select_correspondence(&f_q, &f_s, &cs);
        assert_eq!(qs.len(), 2);
        assert_eq!(ds, vec![0, 0]);
    }

    #[test]
    fn empty_candidate_set_skips_vertex() {
        let f_q = [0.0, 1.0];
        let f_s = [0.5];
        let cs = vec![vec![0], vec![]];
        let (qs, ds) = select_correspondence(&f_q, &f_s, &cs);
        assert_eq!(qs, vec![0]);
        assert_eq!(ds, vec![0]);
    }

    #[test]
    fn wasserstein_loss_value() {
        let mut tape = Tape::new();
        let fq = tape.constant(Tensor::from_vec(2, 1, vec![1.0, 2.0]));
        let fs = tape.constant(Tensor::from_vec(3, 1, vec![0.5, 0.25, 0.25]));
        let l = wasserstein_loss(&mut tape, fq, fs, &[0, 1], &[0, 2]);
        assert!((tape.value(l).item() - (3.0 - 0.75)).abs() < 1e-6);
    }

    #[test]
    fn clamp_keeps_critic_lipschitz_box() {
        let cfg = NeurScConfig::small();
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let disc = Discriminator::new(&mut store, &cfg, &mut rng);
        // Blow up the weights, then clamp.
        for p in disc.params() {
            store.value_mut(p).fill(5.0);
        }
        disc.clamp_weights(&mut store);
        for p in disc.params() {
            assert!(store.value(p).data().iter().all(|&w| w.abs() <= cfg.clamp));
        }
    }

    #[test]
    fn critic_is_three_layers() {
        let cfg = NeurScConfig::small();
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let disc = Discriminator::new(&mut store, &cfg, &mut rng);
        assert_eq!(disc.mlp.layers.len(), 3);
        assert_eq!(disc.mlp.out_dim(), 1);
    }
}

#[cfg(test)]
mod unconstrained_tests {
    use super::*;

    #[test]
    fn unconstrained_picks_extremes_ignoring_candidates() {
        let f_q = [0.5, 0.1, 0.9];
        let f_s = [0.2, 0.8, 0.4, 0.6];
        let (qs, ds) = select_correspondence_unconstrained(&f_q, &f_s);
        assert_eq!(qs, vec![1, 0, 2]); // ascending f_q
        assert_eq!(ds, vec![1, 3, 2]); // descending f_s, truncated to 3
    }

    #[test]
    fn unconstrained_truncates_to_smaller_side() {
        let f_q = [0.0];
        let f_s = [0.3, 0.1];
        let (qs, ds) = select_correspondence_unconstrained(&f_q, &f_s);
        assert_eq!(qs.len(), 1);
        assert_eq!(ds, vec![0]);
    }
}
