//! Losses and the q-error metric (paper §2.2, §5.6, Eq. 10–11).
//!
//! * [`q_error`] — the evaluation metric
//!   `max( max(1,c)/max(1,ĉ), max(1,ĉ)/max(1,c) )`.
//! * [`count_loss`] — Eq. 10's ratio loss. With the log-count head
//!   (`ĉ = e^z`), `max(c/ĉ, ĉ/c) = exp(|ln ĉ − ln c|)`; the default
//!   "log" mode trains on `|ln ĉ − ln c|` (the same objective through a
//!   monotone map, numerically tame at initialization), and the exact mode
//!   reproduces Eq. 10 literally.
//! * [`total_estimate`] — `ĉ(q) = Σ_i ĉ_i(q)` over substructures (§5.4).

use crate::west::LOG_COUNT_CAP;
use neursc_nn::{Tape, Var};

/// The paper's ε guarding division by a near-zero estimate (Eq. 10).
pub const LOSS_EPS: f32 = 1e-9;

/// Which form of the Eq. 10 objective to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountLossMode {
    /// `|ln(ĉ+ε) − ln max(1,c)|` — log of the q-error; same minimizer,
    /// bounded gradients (default).
    #[default]
    LogQError,
    /// Eq. 10 exactly: `max(c/(ĉ+ε), ĉ/c)` computed as
    /// `exp(|ln ĉ − ln c|)` (capped to avoid overflow at initialization).
    ExactQError,
}

/// Evaluation q-error (§2.2). Always ≥ 1; equals 1 on a perfect estimate.
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    let c = truth.max(1.0);
    let e = estimate.max(1.0);
    (c / e).max(e / c)
}

/// Signed q-error used by the paper's box plots: negative magnitude for
/// underestimates, positive for overestimates (their y-axes show
/// under/over explicitly). `1.0` for exact estimates.
pub fn signed_q_error(estimate: f64, truth: f64) -> f64 {
    let q = q_error(estimate, truth);
    if estimate.max(1.0) < truth.max(1.0) {
        -q
    } else {
        q
    }
}

/// Sums per-substructure estimates on the tape:
/// `ĉ(q) = Σ_i e^{z_i}` (`[1, 1]`).
pub fn total_estimate(tape: &mut Tape, log_counts: &[Var]) -> Var {
    assert!(!log_counts.is_empty(), "no substructure estimates to sum");
    let mut total = tape.exp(log_counts[0]);
    for &z in &log_counts[1..] {
        let e = tape.exp(z);
        total = tape.add(total, e);
    }
    total
}

/// Stable `ln Σ_i e^{z_i}` on the tape: shifts by the detached maximum so
/// gradients stay healthy however negative the predictions are. (A naive
/// `ln(Σe^z + ε)` saturates at `ln ε` with gradient `e^z/ε → 0`, freezing
/// any query whose initial prediction is far too small.)
pub fn log_sum_exp(tape: &mut Tape, log_counts: &[Var]) -> Var {
    assert!(!log_counts.is_empty(), "no substructure estimates");
    if log_counts.len() == 1 {
        return log_counts[0];
    }
    let m = log_counts
        .iter()
        .map(|&z| tape.value(z).item())
        .fold(f32::NEG_INFINITY, f32::max);
    let m = if m.is_finite() { m } else { 0.0 };
    let mut sum: Option<Var> = None;
    for &z in log_counts {
        let shifted = tape.add_scalar(z, -m);
        let e = tape.exp(shifted);
        sum = Some(match sum {
            Some(acc) => tape.add(acc, e),
            None => e,
        });
    }
    let Some(total) = sum else {
        unreachable!("log_counts is non-empty");
    };
    let ln = tape.ln(total, 0.0);
    tape.add_scalar(ln, m)
}

/// Eq. 10 on the tape: builds the count loss from per-substructure
/// log-count predictions and the ground truth `c`.
pub fn count_loss(tape: &mut Tape, log_counts: &[Var], truth: u64, mode: CountLossMode) -> Var {
    let log_total = log_sum_exp(tape, log_counts);
    let target = (truth.max(1) as f32).ln();
    let diff = tape.add_scalar(log_total, -target);
    let abs = tape.abs(diff);
    match mode {
        CountLossMode::LogQError => abs,
        CountLossMode::ExactQError => {
            // exp(|Δ|) with the same overflow cap as the head.
            let capped = crate::west::clamp_max(tape, abs, LOG_COUNT_CAP);
            tape.exp(capped)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neursc_nn::{ParamStore, Tensor};

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(1.0, 100.0), 100.0);
        assert_eq!(q_error(100.0, 1.0), 100.0);
        // Sub-1 values clamp to 1 (the paper's max(1,·)).
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(0.5, 2.0), 2.0);
    }

    #[test]
    fn signed_q_error_marks_direction() {
        assert!(signed_q_error(1.0, 100.0) < 0.0);
        assert!(signed_q_error(100.0, 1.0) > 0.0);
        assert_eq!(signed_q_error(5.0, 5.0), 1.0);
    }

    #[test]
    fn total_estimate_sums_exponentials() {
        let mut tape = Tape::new();
        let z1 = tape.constant(Tensor::scalar(0.0)); // e^0 = 1
        let z2 = tape.constant(Tensor::scalar((3.0f32).ln())); // 3
        let total = total_estimate(&mut tape, &[z1, z2]);
        assert!((tape.value(total).item() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn count_loss_zero_at_perfect_prediction() {
        let mut tape = Tape::new();
        let z = tape.constant(Tensor::scalar((42.0f32).ln()));
        let l = count_loss(&mut tape, &[z], 42, CountLossMode::LogQError);
        assert!(tape.value(l).item().abs() < 1e-4);
        let l2 = count_loss(&mut tape, &[z], 42, CountLossMode::ExactQError);
        assert!((tape.value(l2).item() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn exact_mode_equals_q_error() {
        let mut tape = Tape::new();
        let z = tape.constant(Tensor::scalar((10.0f32).ln()));
        let l = count_loss(&mut tape, &[z], 1000, CountLossMode::ExactQError);
        // ĉ = 10, c = 1000 → q-error = 100.
        assert!((tape.value(l).item() - 100.0).abs() / 100.0 < 1e-3);
    }

    #[test]
    fn log_mode_is_monotone_in_error() {
        let mut tape = Tape::new();
        let near = tape.constant(Tensor::scalar((90.0f32).ln()));
        let far = tape.constant(Tensor::scalar((2.0f32).ln()));
        let l_near = count_loss(&mut tape, &[near], 100, CountLossMode::LogQError);
        let l_far = count_loss(&mut tape, &[far], 100, CountLossMode::LogQError);
        assert!(tape.value(l_near).item() < tape.value(l_far).item());
    }

    #[test]
    fn gradient_pushes_estimate_toward_truth() {
        let mut store = ParamStore::new();
        let p = store.alloc(Tensor::scalar(0.0)); // ĉ = 1
        let mut tape = Tape::new();
        let z = tape.param(&store, p);
        let l = count_loss(&mut tape, &[z], 1000, CountLossMode::LogQError);
        tape.backward(l, &mut store);
        // Underestimate → gradient negative (increase z to reduce loss).
        assert!(store.grad(p).item() < 0.0);
    }

    #[test]
    fn truth_zero_treated_as_one() {
        let mut tape = Tape::new();
        let z = tape.constant(Tensor::scalar(0.0)); // ĉ = 1
        let l = count_loss(&mut tape, &[z], 0, CountLossMode::LogQError);
        assert!(tape.value(l).item().abs() < 1e-5);
    }
}

#[cfg(test)]
mod lse_tests {
    use super::*;
    use neursc_nn::{ParamStore, Tensor};

    #[test]
    fn log_sum_exp_matches_direct_computation() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::scalar(1.0));
        let b = tape.constant(Tensor::scalar(2.0));
        let l = log_sum_exp(&mut tape, &[a, b]);
        let expect = (1.0f32.exp() + 2.0f32.exp()).ln();
        assert!((tape.value(l).item() - expect).abs() < 1e-5);
    }

    #[test]
    fn log_sum_exp_stable_for_very_negative_inputs() {
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::scalar(-500.0));
        let b = tape.constant(Tensor::scalar(-501.0));
        let l = log_sum_exp(&mut tape, &[a, b]);
        let v = tape.value(l).item();
        assert!(v.is_finite());
        assert!((v - (-500.0 + (1.0f32 + (-1.0f32).exp()).ln())).abs() < 1e-3);
    }

    #[test]
    fn gradient_survives_deeply_underestimating_predictions() {
        // The failure mode the LSE form fixes: z = -100 must still receive
        // a useful gradient toward the target.
        let mut store = ParamStore::new();
        let p = store.alloc(Tensor::scalar(-100.0));
        let mut tape = Tape::new();
        let z = tape.param(&store, p);
        let l = count_loss(&mut tape, &[z], 1000, CountLossMode::LogQError);
        tape.backward(l, &mut store);
        let g = store.grad(p).item();
        assert!(
            (g + 1.0).abs() < 1e-4,
            "expected gradient ≈ −1 (increase z), got {g}"
        );
    }
}
