//! Construction of the query–candidate bipartite graph `G_B` (paper §5.3).
//!
//! `V(G_B) = V(q) ∪ V(G_sub)`; there is an edge `(u, v)` iff `v ∈ CS(u)`.
//! In the combined index space, query vertex `u` keeps id `u` and
//! substructure vertex `v` gets id `|V(q)| + v`. If `G_B` is disconnected,
//! random query–data edges are added to link the components ("we would
//! randomly add edges between V(q) and V(G_sub)"), so attention messages
//! can reach every vertex.

use crate::extraction::Substructure;
use neursc_gnn::EdgeList;
use neursc_graph::Graph;
use rand::rngs::StdRng;
use rand::Rng;

/// Builds the directed message edges of `G_B` for one `(q, G_sub)` pair.
///
/// Every candidate edge contributes both directions. Returns the edge list
/// over `|V(q)| + |V(G_sub)|` combined vertices.
pub fn build_bipartite_edges(q: &Graph, sub: &Substructure, rng: &mut StdRng) -> EdgeList {
    build_bipartite_edges_with(q, sub, rng, true)
}

/// [`build_bipartite_edges`] with the component-connection step optional
/// (the `gb_connect_components` ablation).
pub fn build_bipartite_edges_with(
    q: &Graph,
    sub: &Substructure,
    rng: &mut StdRng,
    connect: bool,
) -> EdgeList {
    let nq = q.n_vertices();
    let ns = sub.graph.n_vertices();
    let n = nq + ns;
    let mut src = Vec::new();
    let mut dst = Vec::new();
    for u in q.vertices() {
        for &v in &sub.local_cs[u as usize] {
            let vd = nq as u32 + v;
            src.push(u);
            dst.push(vd);
            src.push(vd);
            dst.push(u);
        }
    }
    let mut edges = EdgeList {
        src,
        dst,
        n_vertices: n,
    };
    if connect {
        connect_components(&mut edges, nq, ns, rng);
    }
    edges
}

/// Union-find over the combined vertex set; adds random `(query, data)`
/// edges until `G_B` is connected.
fn connect_components(edges: &mut EdgeList, nq: usize, ns: usize, rng: &mut StdRng) {
    let n = nq + ns;
    if n == 0 || nq == 0 || ns == 0 {
        return;
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        // path compression
        let mut c = x;
        while parent[c as usize] != r {
            let next = parent[c as usize];
            parent[c as usize] = r;
            c = next;
        }
        r
    }
    for i in 0..edges.src.len() {
        let (a, b) = (edges.src[i], edges.dst[i]);
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra as usize] = rb;
        }
    }
    // Link every component to the component of query vertex 0 by a random
    // cross edge (query side from the orphan component if it has one,
    // otherwise a random query vertex).
    let root0 = find(&mut parent, 0);
    // Gather members per component lazily.
    let mut comp_of: Vec<u32> = (0..n as u32).map(|v| find(&mut parent, v)).collect();
    let mut roots: Vec<u32> = comp_of.clone();
    roots.sort_unstable();
    roots.dedup();
    for &r in &roots {
        if r == root0 {
            continue;
        }
        let members: Vec<u32> = (0..n as u32)
            .filter(|&v| comp_of[v as usize] == r)
            .collect();
        // Choose a query-side endpoint and a data-side endpoint spanning
        // the two components.
        let q_in: Vec<u32> = members
            .iter()
            .copied()
            .filter(|&v| (v as usize) < nq)
            .collect();
        let d_in: Vec<u32> = members
            .iter()
            .copied()
            .filter(|&v| (v as usize) >= nq)
            .collect();
        let (a, b) = if !q_in.is_empty() {
            // orphan has a query vertex → connect it to a random data vertex
            // of the main component
            let qv = q_in[rng.gen_range(0..q_in.len())];
            let dv = pick_from_component(&comp_of, root0, nq, n, true, rng).unwrap_or(nq as u32);
            (qv, dv)
        } else {
            // orphan is data-only → connect to a random query vertex of the
            // main component
            let dv = d_in[rng.gen_range(0..d_in.len())];
            let qv = pick_from_component(&comp_of, root0, nq, n, false, rng).unwrap_or(0);
            (dv, qv)
        };
        edges.src.push(a);
        edges.dst.push(b);
        edges.src.push(b);
        edges.dst.push(a);
        // Merge in the union-find view.
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent[ra as usize] = rb;
        }
        for v in 0..n as u32 {
            comp_of[v as usize] = find(&mut parent, v);
        }
    }
}

/// Picks a random member of component `root`; `data_side` selects ids
/// `≥ nq` (data) or `< nq` (query).
fn pick_from_component(
    comp_of: &[u32],
    root: u32,
    nq: usize,
    n: usize,
    data_side: bool,
    rng: &mut StdRng,
) -> Option<u32> {
    let members: Vec<u32> = (0..n as u32)
        .filter(|&v| {
            comp_of[v as usize] == root
                && if data_side {
                    v as usize >= nq
                } else {
                    (v as usize) < nq
                }
        })
        .collect();
    if members.is_empty() {
        None
    } else {
        Some(members[rng.gen_range(0..members.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeurScConfig;
    use crate::extraction::extract_substructures;
    use neursc_match::profile::{paper_data_graph, paper_query_graph};
    use rand::SeedableRng;

    fn connected(edges: &EdgeList) -> bool {
        let n = edges.n_vertices;
        if n == 0 {
            return true;
        }
        let mut adj = vec![Vec::new(); n];
        for (&s, &d) in edges.src.iter().zip(&edges.dst) {
            adj[s as usize].push(d);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &w in &adj[v as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        seen.into_iter().all(|b| b)
    }

    #[test]
    fn paper_example_bipartite_edges() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let ex = extract_substructures(&q, &g, &NeurScConfig::small());
        let sub = &ex.substructures[0];
        let mut rng = StdRng::seed_from_u64(1);
        let e = build_bipartite_edges(&q, sub, &mut rng);
        // Candidates: u1→{v1}, u2→{v4}, u3→{v5,v6}, u4→{v10,v11} = 6 pairs,
        // each in both directions = 12 directed edges. Candidate edges
        // alone leave G_B in 4 components ({u1,v1}, {u2,v4}, {u3,v5,v6},
        // {u4,v10,v11}), so 3 random connector edges (6 directed) are
        // added, exactly as §5.3 prescribes.
        assert_eq!(e.len(), 18);
        assert_eq!(e.n_vertices, 4 + 6);
        assert!(connected(&e));
    }

    #[test]
    fn every_candidate_pair_becomes_an_edge() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let ex = extract_substructures(&q, &g, &NeurScConfig::small());
        let sub = &ex.substructures[0];
        let mut rng = StdRng::seed_from_u64(2);
        let e = build_bipartite_edges(&q, sub, &mut rng);
        let nq = q.n_vertices() as u32;
        for u in q.vertices() {
            for &v in &sub.local_cs[u as usize] {
                let has = e
                    .src
                    .iter()
                    .zip(&e.dst)
                    .any(|(&s, &d)| s == u && d == nq + v);
                assert!(has, "missing edge ({u}, {})", nq + v);
            }
        }
    }

    #[test]
    fn disconnected_gb_gets_connector_edges() {
        // Two disjoint query vertices with disjoint candidates: q has two
        // components in G_B unless connectors are added.
        let q = neursc_graph::Graph::from_edges(2, &[0, 1], &[(0, 1)]).unwrap();
        let sub = Substructure {
            graph: neursc_graph::Graph::from_edges(4, &[0, 0, 1, 1], &[(0, 1), (2, 3)]).unwrap(),
            origin: vec![10, 11, 12, 13],
            local_cs: vec![vec![0, 1], vec![2, 3]],
        };
        let mut rng = StdRng::seed_from_u64(3);
        let e = build_bipartite_edges(&q, &sub, &mut rng);
        assert!(connected(&e), "connector edges must make G_B connected");
        assert!(
            e.len() > 8,
            "extra edges beyond the 8 candidate-directed ones"
        );
    }

    #[test]
    fn connector_edges_are_deterministic_in_seed() {
        let q = neursc_graph::Graph::from_edges(2, &[0, 1], &[(0, 1)]).unwrap();
        let sub = Substructure {
            graph: neursc_graph::Graph::from_edges(4, &[0, 0, 1, 1], &[(0, 1), (2, 3)]).unwrap(),
            origin: vec![10, 11, 12, 13],
            local_cs: vec![vec![0, 1], vec![2, 3]],
        };
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(
            build_bipartite_edges(&q, &sub, &mut r1),
            build_bipartite_edges(&q, &sub, &mut r2)
        );
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::extraction::Substructure;
    use rand::SeedableRng;

    #[test]
    fn unconnected_variant_skips_connector_edges() {
        let q = neursc_graph::Graph::from_edges(2, &[0, 1], &[(0, 1)]).unwrap();
        let sub = Substructure {
            graph: neursc_graph::Graph::from_edges(4, &[0, 0, 1, 1], &[(0, 1), (2, 3)]).unwrap(),
            origin: vec![10, 11, 12, 13],
            local_cs: vec![vec![0, 1], vec![2, 3]],
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let plain = build_bipartite_edges_with(&q, &sub, &mut rng, false);
        assert_eq!(plain.len(), 8, "candidate edges only");
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let connected = build_bipartite_edges_with(&q, &sub, &mut rng, true);
        assert!(connected.len() > plain.len());
    }
}
