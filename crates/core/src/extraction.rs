//! Substructure extraction (paper §4, Algorithm 1 lines 1–7).
//!
//! Pipeline: candidate filtering → `CS(q) = ∪_u CS(u)` → induced subgraph
//! `G_sub` (Definition 3) → connected-component split → skip components
//! smaller than the query (a query cannot embed into a smaller graph) →
//! remap each query vertex's candidates into component-local ids.

use crate::config::NeurScConfig;
use crate::context::GraphContext;
use crate::obs::{self, PipelineReport, Span};
use neursc_graph::induced::{connected_components, induced_subgraph};
use neursc_graph::types::VertexId;
use neursc_graph::Graph;
use neursc_match::{
    filter_candidates_budgeted_profiled, filter_candidates_timed, CandidateSets, FilterBudget,
    FilterError, StageBreakdown,
};

/// One connected candidate substructure with local candidate sets.
#[derive(Debug, Clone)]
pub struct Substructure {
    /// The substructure graph (component-local dense ids).
    pub graph: Graph,
    /// Local id → data-graph id.
    pub origin: Vec<VertexId>,
    /// `local_cs[u]` = candidates of query vertex `u` that live in this
    /// component, as local ids.
    pub local_cs: Vec<Vec<VertexId>>,
}

impl Substructure {
    /// Whether query vertex `u` has at least one candidate here.
    pub fn covers(&self, u: VertexId) -> bool {
        !self.local_cs[u as usize].is_empty()
    }

    /// Whether every query vertex has a candidate in this component — a
    /// necessary condition for any embedding to lie inside it.
    pub fn covers_all(&self) -> bool {
        self.local_cs.iter().all(|s| !s.is_empty())
    }
}

/// Result of the extraction stage.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The (global) candidate sets `CS(u)`.
    pub candidates: CandidateSets,
    /// Connected candidate substructures that passed the size filters.
    pub substructures: Vec<Substructure>,
    /// True when filtering already proves the count is 0 (empty `CS(u)` or
    /// `|∪CS| < |V(q)|` — Algorithm 1's early termination).
    pub trivially_zero: bool,
    /// True when a filtering budget ran out during refinement: the
    /// candidate sets are sound but looser than an unbudgeted run's, so the
    /// substructures may be larger. Always `false` on unbudgeted paths.
    pub degraded: bool,
    /// Per-stage wall timings of this extraction (wall-clock fields — not
    /// covered by any determinism guarantee; see [`crate::obs`]).
    pub report: PipelineReport,
}

impl Extraction {
    /// Total vertices across all retained substructures.
    pub fn total_substructure_vertices(&self) -> usize {
        self.substructures
            .iter()
            .map(|s| s.graph.n_vertices())
            .sum()
    }
}

/// Runs filtering + extraction for `(q, G)` under `cfg`.
pub fn extract_substructures(q: &Graph, g: &Graph, cfg: &NeurScConfig) -> Extraction {
    let t0 = std::time::Instant::now();
    let profiles = neursc_match::profile::all_profiles(g, cfg.filter.profile_radius);
    let profile_build_ns = t0.elapsed().as_nanos() as u64;
    let (candidates, stages) = filter_candidates_timed(q, g, &cfg.filter, &profiles);
    let mut report = report_from_stages(&stages);
    report.profile_build_ns = profile_build_ns;
    extract_from_candidates(q, g, cfg, candidates, false, report)
}

/// [`extract_substructures`] with the data-graph profiles served from a
/// shared [`GraphContext`] — identical output, but the `all_profiles(G, r)`
/// precomputation is paid once per `(G, r)` instead of once per query.
pub fn extract_substructures_with(
    q: &Graph,
    g: &Graph,
    cfg: &NeurScConfig,
    ctx: &GraphContext,
) -> Extraction {
    let (profiles, hit) = ctx.profiles_for(g, cfg.filter.profile_radius);
    let (candidates, stages) = {
        let _sp = Span::enter("filter.candidates");
        let out = filter_candidates_timed(q, g, &cfg.filter, &profiles);
        emit_stage_spans(&out.1);
        out
    };
    let mut report = report_from_stages(&stages);
    report.profile_cache_hit = hit;
    extract_from_candidates(q, g, cfg, candidates, false, report)
}

/// [`extract_substructures_with`] under a [`FilterBudget`].
///
/// Budget exhaustion during refinement degrades gracefully — the returned
/// extraction is built from sound-but-looser candidate sets and carries
/// `degraded: true`. Exhaustion during local pruning is a typed error (no
/// sound partial result exists at that point).
pub fn extract_substructures_budgeted(
    q: &Graph,
    g: &Graph,
    cfg: &NeurScConfig,
    ctx: &GraphContext,
    budget: &FilterBudget,
) -> Result<Extraction, FilterError> {
    let (profiles, hit) = ctx.profiles_for(g, cfg.filter.profile_radius);
    let (out, stages) = {
        let _sp = Span::enter("filter.candidates");
        let r = filter_candidates_budgeted_profiled(q, g, &cfg.filter, &profiles, budget)?;
        emit_stage_spans(&r.1);
        r
    };
    let mut report = report_from_stages(&stages);
    report.profile_cache_hit = hit;
    Ok(extract_from_candidates(
        q,
        g,
        cfg,
        out.candidates,
        out.degraded,
        report,
    ))
}

fn report_from_stages(stages: &StageBreakdown) -> PipelineReport {
    PipelineReport {
        local_prune_ns: stages.local_prune_ns,
        refine_ns: stages.refine_ns,
        filter_steps: stages.steps,
        ..PipelineReport::default()
    }
}

/// Converts the filter crate's plain-data timings into child spans of the
/// currently-open `filter.candidates` span.
fn emit_stage_spans(stages: &StageBreakdown) {
    obs::span_with_ns("filter.local_prune", stages.local_prune_ns);
    obs::span_with_ns("filter.refine", stages.refine_ns);
}

/// Extraction from already-filtered candidate sets — the stage shared by
/// the whole-graph pipeline above and the partitioned pipeline
/// ([`crate::partition`]), which filters against a [`neursc_store`] working
/// set instead of the full data graph. `g` is whatever graph `candidates`
/// is expressed in (the data graph here, the working set there).
pub(crate) fn extract_from_candidates(
    q: &Graph,
    g: &Graph,
    cfg: &NeurScConfig,
    candidates: CandidateSets,
    degraded: bool,
    mut report: PipelineReport,
) -> Extraction {
    let _sp = Span::enter("extract.components");
    let t0 = std::time::Instant::now();
    if candidates.is_trivially_zero() {
        return Extraction {
            candidates,
            substructures: Vec::new(),
            trivially_zero: true,
            degraded,
            report,
        };
    }
    let mut union = Vec::new();
    candidates.union_into(&mut union);
    let g_sub = induced_subgraph(g, &union);
    let components = connected_components(&g_sub.graph);

    let mut substructures = Vec::new();
    for comp in components {
        // Component ids are local to `g_sub`; translate back to data ids.
        let origin: Vec<VertexId> = comp
            .origin
            .iter()
            .map(|&mid| g_sub.origin[mid as usize])
            .collect();
        // Skip rule: the component must be at least as large as the query
        // in both vertices and edges (paper §4(2)).
        if comp.graph.n_vertices() < q.n_vertices() || comp.graph.n_edges() < q.n_edges() {
            continue;
        }
        let mut sub = Substructure {
            local_cs: localize_candidates(&candidates, &origin),
            graph: comp.graph,
            origin,
        };
        // A component can only host embeddings if every query vertex has a
        // candidate inside; others are still skipped (they contribute 0).
        if !sub.covers_all() {
            continue;
        }
        if let Some(cap) = cfg.max_substructure_vertices {
            if sub.graph.n_vertices() > cap {
                sub = truncate_substructure(&sub, q, cap);
                if !sub.covers_all() {
                    continue;
                }
            }
        }
        substructures.push(sub);
    }
    report.extract_ns = t0.elapsed().as_nanos() as u64;
    Extraction {
        candidates,
        substructures,
        trivially_zero: false,
        degraded,
        report,
    }
}

/// Maps global candidate sets into component-local ids (`origin` sorted).
fn localize_candidates(cs: &CandidateSets, origin: &[VertexId]) -> Vec<Vec<VertexId>> {
    cs.sets
        .iter()
        .map(|set| {
            set.iter()
                .filter_map(|&v| origin.binary_search(&v).ok().map(|i| i as VertexId))
                .collect()
        })
        .collect()
}

/// Truncates an oversized substructure to at most `cap` vertices,
/// preferring candidate vertices of rarer query vertices and then higher
/// degree (they participate in more potential embeddings). The result is
/// re-extracted as an induced subgraph and may be disconnected; we keep the
/// largest covering component.
fn truncate_substructure(sub: &Substructure, q: &Graph, cap: usize) -> Substructure {
    // Score each local vertex: (is candidate of scarcest query vertex, degree).
    let n = sub.graph.n_vertices();
    let mut priority = vec![0f64; n];
    for u in q.vertices() {
        let set = &sub.local_cs[u as usize];
        if set.is_empty() {
            continue;
        }
        let scarcity = 1.0 / set.len() as f64;
        for &v in set {
            priority[v as usize] += scarcity;
        }
    }
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by(|&a, &b| {
        priority[b as usize]
            .total_cmp(&priority[a as usize])
            .then(sub.graph.degree(b).cmp(&sub.graph.degree(a)))
            .then(a.cmp(&b))
    });
    let kept: Vec<VertexId> = order.into_iter().take(cap).collect();
    let inner = induced_subgraph(&sub.graph, &kept);
    // Translate: inner local ids → sub local ids → data ids.
    let origin: Vec<VertexId> = inner
        .origin
        .iter()
        .map(|&mid| sub.origin[mid as usize])
        .collect();
    let mut new_sub = Substructure {
        local_cs: Vec::new(),
        graph: inner.graph,
        origin,
    };
    // Recompute local candidate sets from the old ones.
    new_sub.local_cs = sub
        .local_cs
        .iter()
        .map(|set| {
            set.iter()
                .filter_map(|&old_local| {
                    inner
                        .origin
                        .binary_search(&old_local)
                        .ok()
                        .map(|i| i as VertexId)
                })
                .collect()
        })
        .collect();
    new_sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use neursc_match::profile::{paper_data_graph, paper_query_graph};

    fn cfg() -> NeurScConfig {
        NeurScConfig::small()
    }

    #[test]
    fn paper_example_extraction() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let ex = extract_substructures(&q, &g, &cfg());
        assert!(!ex.trivially_zero);
        // Final CS = {v1} ∪ {v4} ∪ {v5,v6} ∪ {v10,v11} = 6 vertices, and the
        // induced subgraph on them is connected (v1-v4, v4-v5/v6/v10/v11).
        assert_eq!(ex.substructures.len(), 1);
        let sub = &ex.substructures[0];
        assert_eq!(sub.origin, vec![0, 3, 4, 5, 9, 10]);
        assert!(sub.covers_all());
        // Edges inside: (v1,v4),(v4,v5),(v4,v6),(v4,v10),(v4,v11),(v5,v10),
        // (v5,v11),(v6,v11) = 8.
        assert_eq!(sub.graph.n_edges(), 8);
    }

    #[test]
    fn local_candidates_map_back_correctly() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let ex = extract_substructures(&q, &g, &cfg());
        let sub = &ex.substructures[0];
        for u in q.vertices() {
            for &local in &sub.local_cs[u as usize] {
                let global = sub.origin[local as usize];
                assert!(ex.candidates.contains(u, global));
                // Labels must match the query vertex.
                assert_eq!(sub.graph.label(local), q.label(u));
            }
        }
    }

    #[test]
    fn missing_label_short_circuits() {
        let g = paper_data_graph();
        let q = neursc_graph::Graph::from_edges(2, &[0, 9], &[(0, 1)]).unwrap();
        let ex = extract_substructures(&q, &g, &cfg());
        assert!(ex.trivially_zero);
        assert!(ex.substructures.is_empty());
    }

    #[test]
    fn small_components_are_skipped() {
        // Data: a triangle of label 0/1/2 plus one far-away isolated pair
        // with the same labels but too small to host the 3-vertex query.
        let g =
            neursc_graph::Graph::from_edges(5, &[0, 1, 2, 0, 1], &[(0, 1), (1, 2), (0, 2), (3, 4)])
                .unwrap();
        let q = neursc_graph::Graph::from_edges(3, &[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let ex = extract_substructures(&q, &g, &cfg());
        assert_eq!(ex.substructures.len(), 1);
        assert_eq!(ex.substructures[0].origin, vec![0, 1, 2]);
    }

    #[test]
    fn truncation_respects_cap_and_coverage() {
        // Star data graph: one hub with many identical leaves; query = edge.
        let n = 60;
        let mut labels = vec![1u32; n];
        labels[0] = 0;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        let g = neursc_graph::Graph::from_edges(n, &labels, &edges).unwrap();
        let q = neursc_graph::Graph::from_edges(2, &[0, 1], &[(0, 1)]).unwrap();
        let mut c = cfg();
        c.max_substructure_vertices = Some(10);
        let ex = extract_substructures(&q, &g, &c);
        assert_eq!(ex.substructures.len(), 1);
        let sub = &ex.substructures[0];
        assert!(sub.graph.n_vertices() <= 10);
        assert!(sub.covers_all());
        // The hub must survive truncation (it is the only label-0 candidate).
        assert!(sub.origin.contains(&0));
    }

    #[test]
    fn cached_extraction_is_identical_to_uncached() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let ctx = GraphContext::new();
        let plain = extract_substructures(&q, &g, &cfg());
        let cached = extract_substructures_with(&q, &g, &cfg(), &ctx);
        // Second call hits the warmed cache and must still agree.
        let cached2 = extract_substructures_with(&q, &g, &cfg(), &ctx);
        for ex in [&cached, &cached2] {
            assert_eq!(ex.candidates, plain.candidates);
            assert_eq!(ex.trivially_zero, plain.trivially_zero);
            assert_eq!(ex.substructures.len(), plain.substructures.len());
            for (a, b) in ex.substructures.iter().zip(&plain.substructures) {
                assert_eq!(a.graph, b.graph);
                assert_eq!(a.origin, b.origin);
                assert_eq!(a.local_cs, b.local_cs);
            }
        }
        assert_eq!(ctx.profiles.len(), 1);
    }

    #[test]
    fn budgeted_extraction_matches_unbudgeted_when_generous() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let ctx = GraphContext::new();
        let plain = extract_substructures(&q, &g, &cfg());
        let budgeted =
            extract_substructures_budgeted(&q, &g, &cfg(), &ctx, &FilterBudget::UNBOUNDED).unwrap();
        assert!(!budgeted.degraded);
        assert_eq!(budgeted.candidates, plain.candidates);
        assert_eq!(budgeted.substructures.len(), plain.substructures.len());
    }

    #[test]
    fn starved_extraction_budget_is_a_typed_error() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let ctx = GraphContext::new();
        let err = extract_substructures_budgeted(&q, &g, &cfg(), &ctx, &FilterBudget::steps(0))
            .unwrap_err();
        assert!(matches!(err, FilterError::BudgetExhausted { .. }));
    }

    #[test]
    fn uncapped_extraction_keeps_everything() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let mut c = cfg();
        c.max_substructure_vertices = None;
        let ex = extract_substructures(&q, &g, &c);
        assert_eq!(ex.total_substructure_vertices(), 6);
    }
}
