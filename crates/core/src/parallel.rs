//! Deterministic work-stealing fan-out for the estimation pipeline.
//!
//! One primitive covers both fan-out axes (queries within a batch,
//! substructures within a query): map `f` over `0..n` with a fixed number
//! of scoped worker threads pulling indices from a shared atomic counter,
//! and return results **in index order**. Scheduling is nondeterministic;
//! the result vector is not — every downstream reduction (summing
//! per-substructure counts, concatenating per-query estimates) consumes
//! the indexed vector, so a fixed seed produces bit-identical output at any
//! thread count. This is the same pattern `neursc_workloads::ground_truth`
//! uses for exact counting.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `0..n` with up to `threads` workers, returning results in
/// index order. `threads <= 1` (or `n <= 1`) runs inline on the caller's
/// stack with no spawning or locking.
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // One slot per item: workers never contend on a slot, and `Mutex` keeps
    // the API safe without `unsafe` scatter-writes.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock() = Some(f(i));
            });
        }
    })
    .expect("fan-out worker panicked");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("work item skipped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 9] {
            let out = parallel_map_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_items_yield_empty() {
        assert!(parallel_map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn every_index_is_processed_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let out = parallel_map_indexed(257, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }
}
