//! Deterministic work-stealing fan-out for the estimation pipeline.
//!
//! One primitive covers both fan-out axes (queries within a batch,
//! substructures within a query): map `f` over `0..n` with a fixed number
//! of scoped worker threads pulling indices from a shared atomic counter,
//! and return results **in index order**. Scheduling is nondeterministic;
//! the result vector is not — every downstream reduction (summing
//! per-substructure counts, concatenating per-query estimates) consumes
//! the indexed vector, so a fixed seed produces bit-identical output at any
//! thread count. This is the same pattern `neursc_workloads::ground_truth`
//! uses for exact counting.
//!
//! **Panic containment.** [`parallel_map_caught`] wraps each item in
//! `catch_unwind`, so one poisoned item yields an [`ItemPanic`] in its slot
//! while every other item completes normally — on the inline path *and* the
//! threaded path, making containment semantics thread-count-invariant.
//! Caveat: `catch_unwind` cannot intercept anything under
//! `panic = "abort"` (see KNOWN_ISSUES.md); no profile in this workspace
//! sets it.

use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A contained panic from one work item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Index of the item that panicked.
    pub index: usize,
    /// The panic payload when it was a `&str`/`String`, else a placeholder.
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for ItemPanic {}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `0..n` with up to `threads` workers, returning results in
/// index order. `threads <= 1` (or `n <= 1`) runs inline on the caller's
/// stack with no spawning or locking.
///
/// A panicking item re-panics on the caller's stack (after all other items
/// finish); use [`parallel_map_caught`] to contain panics per item instead.
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(n);
    for r in parallel_map_caught(n, threads, f) {
        match r {
            Ok(v) => out.push(v),
            Err(p) => std::panic::panic_any(p.message),
        }
    }
    out
}

/// [`parallel_map_indexed`] with per-item panic containment: item `i`'s
/// slot holds `Err(ItemPanic)` if `f(i)` panicked, and every other slot is
/// computed normally. Results are in index order at any thread count.
///
/// `f` is wrapped in [`AssertUnwindSafe`]: the closures passed here read
/// shared immutable state (`&self`, prepared inputs) and build their
/// results from scratch, so a unwound item cannot leave broken invariants
/// behind for other items to observe.
pub fn parallel_map_caught<T, F>(n: usize, threads: usize, f: F) -> Vec<Result<T, ItemPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run = |i: usize| -> Result<T, ItemPanic> {
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| ItemPanic {
            index: i,
            message: payload_message(payload),
        })
    };
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(run).collect();
    }
    // One slot per item: workers never contend on a slot, and `Mutex` keeps
    // the API safe without `unsafe` scatter-writes.
    let slots: Vec<Mutex<Option<Result<T, ItemPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let scope_result = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock() = Some(run(i));
            });
        }
    });
    // Workers cannot unwind out of the loop — `run` catches every item
    // panic — so the scope only errors on catastrophic runtime failures.
    if scope_result.is_err() {
        unreachable!("fan-out worker escaped catch_unwind");
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot.into_inner() {
            Some(r) => r,
            None => unreachable!("work item {i} skipped by the index counter"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 9] {
            let out = parallel_map_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_items_yield_empty() {
        assert!(parallel_map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn every_index_is_processed_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let out = parallel_map_indexed(257, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn caught_map_isolates_panicking_items() {
        for threads in [1, 2, 4] {
            let out = parallel_map_caught(10, threads, |i| {
                if i == 3 {
                    panic!("poisoned item {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 10);
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, 3);
                    assert!(p.message.contains("poisoned item 3"), "{p}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn caught_map_handles_non_string_payloads() {
        let out = parallel_map_caught(1, 1, |_| -> usize { std::panic::panic_any(42u64) });
        let p = out[0].as_ref().unwrap_err();
        assert_eq!(p.message, "non-string panic payload");
    }

    #[test]
    fn all_items_panicking_still_returns_all_slots() {
        let out = parallel_map_caught(5, 2, |i| -> usize { panic!("item {i}") });
        assert_eq!(out.len(), 5);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap_err().index, i);
        }
    }

    #[test]
    fn uncaught_map_repanics_on_poisoned_item() {
        let r = std::panic::catch_unwind(|| {
            parallel_map_indexed(4, 2, |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
    }
}
