//! Alternative discriminator distance metrics (paper Fig. 12 ablation).
//!
//! The variants `NeurSC-EU`, `NeurSC-KL` and `NeurSC-JS` replace the
//! Wasserstein critic with a direct distance between corresponding query
//! and data vertex representations: pairs are the candidate-set-respecting
//! nearest neighbors in representation space, and training minimizes the
//! chosen distance as the `L_w` term of Eq. 11. KL and JS operate on
//! softmax-normalized representations (they compare distributions).

use crate::config::DiscriminatorMetric;
use neursc_nn::{Tape, Tensor, Var};

/// Selects, for every query vertex `u`, the candidate `v ∈ CS(u)` closest
/// to it under `metric` (computed on the forward *values*). Returns
/// parallel index lists.
pub fn select_nearest_pairs(
    h_q: &Tensor,
    h_sub: &Tensor,
    local_cs: &[Vec<u32>],
    metric: DiscriminatorMetric,
) -> (Vec<u32>, Vec<u32>) {
    let mut qs = Vec::new();
    let mut ds = Vec::new();
    for (u, cands) in local_cs.iter().enumerate() {
        if cands.is_empty() {
            continue;
        }
        let hu = h_q.row(u);
        let best = cands.iter().copied().min_by(|&a, &b| {
            let da = value_distance(hu, h_sub.row(a as usize), metric);
            let db = value_distance(hu, h_sub.row(b as usize), metric);
            da.total_cmp(&db).then(a.cmp(&b))
        });
        let Some(best) = best else {
            unreachable!("cands is non-empty");
        };
        qs.push(u as u32);
        ds.push(best);
    }
    (qs, ds)
}

fn value_distance(a: &[f32], b: &[f32], metric: DiscriminatorMetric) -> f32 {
    match metric {
        DiscriminatorMetric::Wasserstein | DiscriminatorMetric::Euclidean => {
            a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
        }
        DiscriminatorMetric::KullbackLeibler => {
            let (p, q) = (softmax_slice(a), softmax_slice(b));
            kl_slice(&p, &q)
        }
        DiscriminatorMetric::JensenShannon => {
            let (p, q) = (softmax_slice(a), softmax_slice(b));
            let m: Vec<f32> = p.iter().zip(&q).map(|(&x, &y)| 0.5 * (x + y)).collect();
            0.5 * kl_slice(&p, &m) + 0.5 * kl_slice(&q, &m)
        }
    }
}

fn softmax_slice(x: &[f32]) -> Vec<f32> {
    let m = x.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = x.iter().map(|&v| (v - m).exp()).collect();
    let s: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / s.max(1e-12)).collect()
}

fn kl_slice(p: &[f32], q: &[f32]) -> f32 {
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else {
                pi * ((pi + 1e-12).ln() - (qi + 1e-12).ln())
            }
        })
        .sum()
}

pub use neursc_gnn::row_softmax;

/// The differentiable distance term for the θ update (plays the role of
/// `−L_w` in Eq. 11: it is *added* to the loss, so minimizing it pulls
/// corresponding representations together).
pub fn metric_loss(
    tape: &mut Tape,
    h_q: Var,
    h_sub: Var,
    queries: &[u32],
    data: &[u32],
    metric: DiscriminatorMetric,
) -> Var {
    assert_eq!(queries.len(), data.len());
    assert!(!queries.is_empty(), "no correspondence pairs");
    let n = queries.len() as f32;
    let hu = tape.index_select(h_q, queries);
    let hv = tape.index_select(h_sub, data);
    match metric {
        DiscriminatorMetric::Wasserstein | DiscriminatorMetric::Euclidean => {
            let diff = tape.sub(hu, hv);
            let sq = tape.mul(diff, diff);
            let total = tape.sum(sq);
            tape.scale(total, 1.0 / n)
        }
        DiscriminatorMetric::KullbackLeibler => {
            let p = row_softmax(tape, hu);
            let q = row_softmax(tape, hv);
            let kl = kl_on_tape(tape, p, q);
            tape.scale(kl, 1.0 / n)
        }
        DiscriminatorMetric::JensenShannon => {
            let p = row_softmax(tape, hu);
            let q = row_softmax(tape, hv);
            let sum = tape.add(p, q);
            let m = tape.scale(sum, 0.5);
            let k1 = kl_on_tape(tape, p, m);
            let k2 = kl_on_tape(tape, q, m);
            let s = tape.add(k1, k2);
            tape.scale(s, 0.5 / n)
        }
    }
}

/// `Σ_ij p_ij (ln p_ij − ln q_ij)` on the tape.
fn kl_on_tape(tape: &mut Tape, p: Var, q: Var) -> Var {
    let lp = tape.ln(p, 1e-12);
    let lq = tape.ln(q, 1e-12);
    let d = tape.sub(lp, lq);
    let w = tape.mul(p, d);
    tape.sum(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_pair_selection_euclidean() {
        let h_q = Tensor::from_rows(&[&[0.0, 0.0], &[5.0, 5.0]]);
        let h_s = Tensor::from_rows(&[&[0.1, 0.0], &[4.9, 5.1], &[100.0, 0.0]]);
        let cs = vec![vec![0, 2], vec![1, 2]];
        let (qs, ds) = select_nearest_pairs(&h_q, &h_s, &cs, DiscriminatorMetric::Euclidean);
        assert_eq!(qs, vec![0, 1]);
        assert_eq!(ds, vec![0, 1]);
    }

    #[test]
    fn selection_respects_candidate_sets() {
        // The globally closest vertex (0) is not in u0's candidate set.
        let h_q = Tensor::from_rows(&[&[0.0, 0.0]]);
        let h_s = Tensor::from_rows(&[&[0.0, 0.0], &[9.0, 9.0]]);
        let cs = vec![vec![1]];
        let (_, ds) = select_nearest_pairs(&h_q, &h_s, &cs, DiscriminatorMetric::Euclidean);
        assert_eq!(ds, vec![1]);
    }

    #[test]
    fn row_softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let h = tape.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]));
        let s = row_softmax(&mut tape, h);
        let v = tape.value(s);
        for r in 0..2 {
            let sum: f32 = v.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(v.row(r).iter().all(|&x| x >= 0.0));
        }
        // Softmax is monotone in logits.
        assert!(v.get(0, 2) > v.get(0, 0));
    }

    #[test]
    fn euclidean_loss_zero_for_identical_pairs() {
        let mut tape = Tape::new();
        let h = tape.constant(Tensor::from_rows(&[&[1.0, 2.0]]));
        let l = metric_loss(&mut tape, h, h, &[0], &[0], DiscriminatorMetric::Euclidean);
        assert_eq!(tape.value(l).item(), 0.0);
    }

    #[test]
    fn kl_and_js_nonnegative_and_zero_at_equality() {
        for metric in [
            DiscriminatorMetric::KullbackLeibler,
            DiscriminatorMetric::JensenShannon,
        ] {
            let mut tape = Tape::new();
            let a = tape.constant(Tensor::from_rows(&[&[1.0, 0.0, -1.0]]));
            let b = tape.constant(Tensor::from_rows(&[&[0.0, 3.0, 0.0]]));
            let l_diff = metric_loss(&mut tape, a, b, &[0], &[0], metric);
            assert!(tape.value(l_diff).item() > 0.0, "{metric:?} not positive");
            let l_same = metric_loss(&mut tape, a, a, &[0], &[0], metric);
            assert!(
                tape.value(l_same).item().abs() < 1e-5,
                "{metric:?} not zero"
            );
        }
    }

    #[test]
    fn js_is_symmetric_kl_is_not() {
        let a_t = Tensor::from_rows(&[&[2.0, 0.0, -1.0]]);
        let b_t = Tensor::from_rows(&[&[0.0, 1.0, 0.5]]);
        let run = |x: &Tensor, y: &Tensor, m| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let yv = tape.constant(y.clone());
            let l = metric_loss(&mut tape, xv, yv, &[0], &[0], m);
            tape.value(l).item()
        };
        let js_ab = run(&a_t, &b_t, DiscriminatorMetric::JensenShannon);
        let js_ba = run(&b_t, &a_t, DiscriminatorMetric::JensenShannon);
        assert!((js_ab - js_ba).abs() < 1e-5);
        let kl_ab = run(&a_t, &b_t, DiscriminatorMetric::KullbackLeibler);
        let kl_ba = run(&b_t, &a_t, DiscriminatorMetric::KullbackLeibler);
        assert!((kl_ab - kl_ba).abs() > 1e-4);
    }

    #[test]
    fn gradients_flow_through_metric_losses() {
        use neursc_nn::ParamStore;
        for metric in [
            DiscriminatorMetric::Euclidean,
            DiscriminatorMetric::KullbackLeibler,
            DiscriminatorMetric::JensenShannon,
        ] {
            let mut store = ParamStore::new();
            let p = store.alloc(Tensor::from_rows(&[&[1.0, -1.0]]));
            let mut tape = Tape::new();
            let hq = tape.param(&store, p);
            let hs = tape.constant(Tensor::from_rows(&[&[0.0, 2.0]]));
            let l = metric_loss(&mut tape, hq, hs, &[0], &[0], metric);
            tape.backward(l, &mut store);
            assert!(
                store.grad(p).max_abs() > 0.0,
                "{metric:?} produced zero gradient"
            );
        }
    }
}
