//! Property tests for NeurSC's extraction and bipartite-graph stages.
//!
//! The load-bearing invariant: extraction must preserve Definition 2's
//! completeness — every data vertex used by any true embedding must land
//! in some retained substructure, inside the right local candidate set.

use neursc_core::config::NeurScConfig;
use neursc_core::extraction::extract_substructures;
use neursc_core::train::prepare_query;
use neursc_graph::{Graph, GraphBuilder};
use proptest::prelude::*;

/// Enumerates all embeddings by brute force (tiny inputs only).
fn all_embeddings(q: &Graph, g: &Graph) -> Vec<Vec<u32>> {
    fn rec(
        q: &Graph,
        g: &Graph,
        depth: usize,
        used: &mut [bool],
        map: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if depth == q.n_vertices() {
            out.push(map.clone());
            return;
        }
        let u = depth as u32;
        for v in g.vertices() {
            if used[v as usize] || g.label(v) != q.label(u) {
                continue;
            }
            let ok = q
                .neighbors(u)
                .iter()
                .filter(|&&w| (w as usize) < depth)
                .all(|&w| g.has_edge(v, map[w as usize]));
            if !ok {
                continue;
            }
            used[v as usize] = true;
            map.push(v);
            rec(q, g, depth + 1, used, map, out);
            map.pop();
            used[v as usize] = false;
        }
    }
    let mut out = Vec::new();
    rec(
        q,
        g,
        0,
        &mut vec![false; g.n_vertices()],
        &mut Vec::new(),
        &mut out,
    );
    out
}

fn arb_graph(n_min: usize, n_max: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (n_min..=n_max).prop_flat_map(move |n| {
        let label_vec = proptest::collection::vec(0u32..labels, n);
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), n..(3 * n));
        (label_vec, edges).prop_map(move |(ls, es)| {
            let mut b = GraphBuilder::new(n);
            for (v, &l) in ls.iter().enumerate() {
                b.set_label(v as u32, l);
            }
            for (u, v) in es {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

/// A connected query built from a path plus extra edges (guaranteed
/// connected, as the paper's workloads require).
fn arb_connected_query(labels: u32) -> impl Strategy<Value = Graph> {
    (2usize..=4).prop_flat_map(move |n| {
        let label_vec = proptest::collection::vec(0u32..labels, n);
        let extra = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n);
        (label_vec, extra).prop_map(move |(ls, es)| {
            let mut b = GraphBuilder::new(n);
            for (v, &l) in ls.iter().enumerate() {
                b.set_label(v as u32, l);
            }
            for v in 1..n as u32 {
                b.add_edge(v - 1, v).unwrap();
            }
            for (u, v) in es {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every embedding lies entirely within one retained substructure, and
    /// every matched pair appears in that substructure's local candidates.
    #[test]
    fn extraction_preserves_every_embedding(
        g in arb_graph(6, 14, 3),
        q in arb_connected_query(3),
    ) {
        let cfg = NeurScConfig::small();
        let embeddings = all_embeddings(&q, &g);
        let ex = extract_substructures(&q, &g, &cfg);
        if !embeddings.is_empty() {
            prop_assert!(!ex.trivially_zero, "nonzero count marked trivially zero");
        }
        for emb in &embeddings {
            // Find the substructure containing the embedding's vertex set.
            let hosted = ex.substructures.iter().any(|sub| {
                emb.iter().enumerate().all(|(u, &v)| {
                    sub.origin.binary_search(&v).is_ok_and(|local| {
                        sub.local_cs[u].contains(&(local as u32))
                    })
                })
            });
            prop_assert!(hosted, "embedding {emb:?} not hosted by any substructure");
        }
    }

    /// Substructure graphs are faithful induced subgraphs: edges map back
    /// to data edges and labels are inherited.
    #[test]
    fn substructures_are_induced_subgraphs(
        g in arb_graph(6, 14, 3),
        q in arb_connected_query(3),
    ) {
        let ex = extract_substructures(&q, &g, &NeurScConfig::small());
        for sub in &ex.substructures {
            for e in sub.graph.edges() {
                prop_assert!(g.has_edge(sub.origin[e.u as usize], sub.origin[e.v as usize]));
            }
            for v in sub.graph.vertices() {
                prop_assert_eq!(sub.graph.label(v), g.label(sub.origin[v as usize]));
            }
            // Size filters were applied.
            prop_assert!(sub.graph.n_vertices() >= q.n_vertices());
            prop_assert!(sub.graph.n_edges() >= q.n_edges());
        }
    }

    /// Prepared queries are internally consistent: bipartite edges stay in
    /// range and every candidate pair has its edge.
    #[test]
    fn prepared_queries_are_consistent(
        g in arb_graph(6, 14, 3),
        q in arb_connected_query(3),
    ) {
        let cfg = NeurScConfig::small();
        let pq = prepare_query(&q, &g, &cfg, 0).unwrap();
        let nq = q.n_vertices();
        for sub in &pq.subs {
            let n = nq + sub.x.rows();
            prop_assert_eq!(sub.gb.n_vertices, n);
            for (&s, &d) in sub.gb.src.iter().zip(&sub.gb.dst) {
                prop_assert!((s as usize) < n && (d as usize) < n);
                // Bipartite: one endpoint on each side.
                prop_assert!(((s as usize) < nq) != ((d as usize) < nq));
            }
            for (u, cands) in sub.local_cs.iter().enumerate() {
                for &v in cands {
                    let vd = (nq + v as usize) as u32;
                    let has = sub
                        .gb
                        .src
                        .iter()
                        .zip(&sub.gb.dst)
                        .any(|(&s, &d)| s == u as u32 && d == vd);
                    prop_assert!(has, "candidate edge ({u},{v}) missing from G_B");
                }
            }
        }
    }
}
