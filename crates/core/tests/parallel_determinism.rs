//! Bit-level determinism of the parallel estimation pipeline.
//!
//! The tentpole guarantee: with a fixed seed, running with N worker threads
//! produces output **bit-identical** to running sequentially. Three
//! mechanisms make this hold and are exercised together here:
//!
//! * `parallel_map_indexed` stores results in per-index slots and reduces
//!   in index order, so scheduling never changes reduction order;
//! * the row-blocked nn kernels keep each output row's FP operation order
//!   fixed (thread count only changes *which* worker computes a row);
//! * query preparation derives its RNG per query from the config seed, not
//!   from shared mutable state.
//!
//! Everything runs in ONE test function: the kernel thread settings are
//! process-global, and the test harness runs `#[test]`s concurrently.

use neursc_core::{GraphContext, NeurSc, NeurScConfig, Parallelism};
use neursc_graph::generate::erdos_renyi;
use neursc_graph::sample::{sample_query, QuerySampler};
use neursc_graph::Graph;
use neursc_match::profile::{paper_data_graph, paper_query_graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_config(threads: usize) -> NeurScConfig {
    let mut c = NeurScConfig::small();
    c.pretrain_epochs = 4;
    c.adversarial_epochs = 2;
    c.batch_size = 8;
    // min_parallel_rows = 1 forces the row-blocked kernels on for every
    // matmul/transpose, so the kernel path is genuinely exercised.
    c.parallelism = Parallelism {
        threads,
        min_parallel_rows: 1,
    };
    c
}

fn workload(seed: u64) -> (Graph, Vec<Graph>) {
    let g = erdos_renyi(150, 450, 4, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = (0..32)
        .map(|_| sample_query(&g, &QuerySampler::induced(4), &mut rng).unwrap())
        .collect();
    (g, queries)
}

/// Runs the full pipeline (paper §4 example graphs + a 32-query batch on a
/// generated graph) at the given thread count, returning every estimate as
/// raw bits.
fn run_pipeline(threads: usize) -> Vec<u64> {
    let cfg = tiny_config(threads);
    cfg.parallelism.apply_to_kernels();
    let model = NeurSc::new(cfg, 42);
    let mut bits = Vec::new();

    // Paper Figure 1 graphs: the worked example from §4.
    let (pq, pg) = (paper_query_graph(), paper_data_graph());
    bits.push(model.estimate(&pq, &pg).unwrap().to_bits());

    // Batched estimation over a shared context.
    let (g, queries) = workload(7);
    let ctx = GraphContext::new();
    for d in model.estimate_batch(&queries, &g, &ctx) {
        bits.push(d.unwrap().count.to_bits());
    }

    // Single-query cached path must agree with the batch.
    bits.push(
        model
            .estimate_with(&queries[0], &g, &ctx)
            .unwrap()
            .to_bits(),
    );
    bits
}

#[test]
fn threads_1_and_4_are_bit_identical() {
    let sequential = run_pipeline(1);
    let parallel = run_pipeline(4);
    assert_eq!(sequential.len(), parallel.len());
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s,
            p,
            "estimate {i} differs between 1 and 4 threads: {} vs {}",
            f64::from_bits(*s),
            f64::from_bits(*p)
        );
    }

    // Training with the parallel preparation path is deterministic too:
    // fit at 1 and 4 threads from identical initial weights must produce
    // identical post-training estimates.
    let (g, queries) = workload(9);
    let labeled: Vec<(Graph, u64)> = queries.iter().take(8).map(|q| (q.clone(), 5)).collect();
    let mut ests = Vec::new();
    for threads in [1, 4] {
        let cfg = tiny_config(threads);
        cfg.parallelism.apply_to_kernels();
        let mut model = NeurSc::new(cfg, 42);
        model.fit(&g, &labeled).unwrap();
        ests.push(model.estimate(&queries[0], &g).unwrap().to_bits());
    }
    assert_eq!(
        ests[0], ests[1],
        "post-training estimates differ between 1 and 4 threads"
    );

    // Restore the process-global kernel defaults for any other test binary
    // sharing the process (none today, but cheap insurance).
    Parallelism::default().apply_to_kernels();
}
