//! Determinism of the observability layer itself (DESIGN.md §8).
//!
//! The spans and metrics a run emits are part of its observable output, so
//! they get the same guarantee as the estimates: **bit-identical across
//! thread counts**. Two mechanisms carry it:
//!
//! * spans live on logical *lanes* keyed by batch index (not OS thread),
//!   with per-lane sequence numbers and tick clocks, so the canonical
//!   Chrome trace export is a pure function of the input;
//! * counters are bumped on the coordinating thread after fan-in, in batch
//!   order, so outcome tallies never race.
//!
//! Everything runs in ONE test function per scenario: kernel thread
//! settings are process-global and the harness runs `#[test]`s
//! concurrently (same structure as `parallel_determinism.rs`).

use neursc_core::obs::TraceTime;
use neursc_core::{
    FaultPlan, GraphContext, MetricsSnapshot, NeurSc, NeurScConfig, ObsSink, Parallelism, Recorder,
};
use neursc_graph::generate::erdos_renyi;
use neursc_graph::sample::{sample_query, QuerySampler};
use neursc_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn tiny_config(threads: usize) -> NeurScConfig {
    let mut c = NeurScConfig::small();
    c.parallelism = Parallelism {
        threads,
        min_parallel_rows: 1,
    };
    c
}

fn workload(seed: u64) -> (Graph, Vec<Graph>) {
    let g = erdos_renyi(150, 450, 4, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = (0..32)
        .map(|_| sample_query(&g, &QuerySampler::induced(4), &mut rng).unwrap())
        .collect();
    (g, queries)
}

/// The deterministic projection of a span: everything except wall-clock
/// fields (`start_ns`, `dur_ns`, `os_tid`), which legitimately vary.
type SpanKey = (u64, u64, Option<u64>, &'static str, Option<&'static str>);

/// Runs a 32-query batch at `threads` workers under a fresh [`Recorder`],
/// returning the span projection, the metrics snapshot and the canonical
/// trace export.
fn traced_batch(threads: usize, faults: FaultPlan) -> (Vec<SpanKey>, MetricsSnapshot, String) {
    let cfg = tiny_config(threads);
    cfg.parallelism.apply_to_kernels();
    let model = NeurSc::new(cfg, 42);
    let (g, queries) = workload(7);

    let rec = Arc::new(Recorder::new());
    let sink: Arc<dyn ObsSink> = rec.clone();
    let mut ctx = GraphContext::with_obs(sink);
    ctx.faults = faults;
    let details = model.estimate_batch(&queries, &g, &ctx);
    assert_eq!(details.len(), queries.len());

    let spans = rec
        .spans()
        .iter()
        .map(|s| (s.lane, s.seq, s.parent, s.name, s.tag))
        .collect();
    let snap = rec.metrics().snapshot();
    let trace = rec.chrome_trace_json(TraceTime::Canonical);
    (spans, snap, trace)
}

#[test]
fn span_tree_and_metrics_are_thread_count_invariant() {
    let (spans1, snap1, trace1) = traced_batch(1, FaultPlan::new());
    let (spans2, snap2, trace2) = traced_batch(2, FaultPlan::new());
    let (spans4, snap4, trace4) = traced_batch(4, FaultPlan::new());

    // Identical span forests: same lanes, sequence numbers, parent links,
    // names and tags — regardless of which OS thread ran which lane.
    assert_eq!(spans1, spans2);
    assert_eq!(spans1, spans4);
    assert!(!spans1.is_empty());

    // Identical counters and histograms (wall-clock histograms observe the
    // same *set* of stages; their ns values differ, so compare counters
    // and histogram counts, not sums).
    assert_eq!(snap1.counters, snap2.counters);
    assert_eq!(snap1.counters, snap4.counters);
    let shape = |s: &MetricsSnapshot| {
        s.histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&snap1), shape(&snap2));
    assert_eq!(shape(&snap1), shape(&snap4));

    // The canonical Chrome export is byte-identical.
    assert_eq!(trace1, trace2);
    assert_eq!(trace1, trace4);

    // The batch actually exercised the pipeline: all 32 queries resolved,
    // and every query after the warm-up hit the shared profile cache.
    let ok = snap1.counter("query.ok")
        + snap1.counter("query.degraded")
        + snap1.counter("query.trivially_zero");
    assert_eq!(ok, 32);
    assert_eq!(snap1.counter("cache.profile.miss"), 1);
    assert!(snap1.counter("cache.profile.hit") >= 32);

    // Spans cover each stage of the pipeline at least once.
    for stage in [
        "pipeline.warmup",
        "pipeline.query",
        "filter.candidates",
        "extract.components",
        "gnn.forward",
    ] {
        assert!(
            spans1.iter().any(|s| s.3 == stage),
            "missing stage span {stage:?}"
        );
    }
}

#[test]
fn poisoned_slot_tags_its_span_without_perturbing_others() {
    let plan = FaultPlan::new().panic_on(5);
    let (spans2, snap2, _) = traced_batch(2, plan.clone());
    let (spans4, snap4, _) = traced_batch(4, plan);

    // The fault is deterministic, so the traced output still is too.
    assert_eq!(spans2, spans4);
    assert_eq!(snap2.counters, snap4.counters);

    // Exactly one query panicked, and its `pipeline.query` span carries the
    // unwind tag (the frame guard closes open spans as `"panic"` when the
    // worker dies); the other 31 resolved normally.
    assert_eq!(snap2.counter("query.panicked"), 1);
    let ok = snap2.counter("query.ok")
        + snap2.counter("query.degraded")
        + snap2.counter("query.trivially_zero");
    assert_eq!(ok, 31);
    let tagged: Vec<_> = spans2
        .iter()
        .filter(|s| s.3 == "pipeline.query" && s.4 == Some("panic"))
        .collect();
    assert_eq!(tagged.len(), 1);
    // Lane 1 + i for batch item i → the poisoned slot is lane 6.
    assert_eq!(tagged[0].0, 6);

    // Untouched slots match a fault-free run span-for-span.
    let (clean, clean_snap, _) = traced_batch(2, FaultPlan::new());
    let strip = |spans: &[SpanKey]| {
        spans
            .iter()
            .filter(|s| s.0 != 6)
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&spans2), strip(&clean));
    // Cache metrics are unaffected by the poisoned slot's absence only in
    // its own contribution; every surviving query still hit the cache.
    assert_eq!(clean_snap.counter("cache.profile.miss"), 1);
    assert!(snap2.counter("cache.profile.hit") >= 31);
}
