//! Exact subgraph-matching substrate for the NeurSC reproduction.
//!
//! NeurSC needs three things from classical subgraph-matching machinery:
//!
//! 1. **Candidate filtering** (paper §4(1)) — the GraphQL-style pipeline of
//!    local pruning by r-hop label [`profile`]s followed by global
//!    [`refinement`] that demands a semi-perfect matching between query- and
//!    data-vertex neighborhoods. Exposed via [`filter::filter_candidates`]
//!    producing [`candidates::CandidateSets`] (the `CS(u)` of Definition 2).
//! 2. **Ground truth** — an exact backtracking subgraph-isomorphism
//!    *counter* ([`enumerate`]) with a deterministic expansion budget
//!    standing in for the paper's 30-minute GraphQL cutoff, plus a
//!    homomorphism-counting variant ([`homomorphism`]) since the paper notes
//!    NeurSC handles that semantics too.
//! 3. **Bipartite matching** ([`bipartite`], Hopcroft–Karp) — the engine
//!    behind semi-perfect matching checks.

pub mod bipartite;
pub mod budget;
pub mod cache;
pub mod candidates;
pub mod enumerate;
pub mod filter;
pub mod homomorphism;
pub mod ordering;
pub mod profile;
pub mod refinement;
pub mod treedp;

pub use budget::{FilterBudget, FilterError, FilterPhase, WorkMeter};
pub use cache::{ProfileCache, ProfileExport};
pub use candidates::CandidateSets;
pub use enumerate::{count_embeddings, CountOutcome, CountResult};
pub use filter::{
    filter_candidates, filter_candidates_budgeted, filter_candidates_budgeted_profiled,
    filter_candidates_timed, filter_candidates_with, FilterConfig, FilterOutput, StageBreakdown,
};
