//! Global refinement of candidate sets (paper §4(1), after GraphQL).
//!
//! For each surviving pair `v ∈ CS(u)`, build the bipartite graph `B_v^u`
//! between `N(u)` and `N(v)` with an edge `(u', v')` iff `v' ∈ CS(u')`, and
//! keep `v` only if `B_v^u` has a semi-perfect matching (one saturating
//! `N(u)`). The procedure is safe: if `(u, v)` is part of a real embedding
//! `f`, then `u' ↦ f(u')` is itself such a matching. Rounds repeat until a
//! fixed point or the round budget is hit (the paper: "could be conducted
//! multiple times to obtain a more compact candidate set").

use crate::bipartite::{has_left_saturating_matching, BipartiteGraph};
use crate::candidates::CandidateSets;
use neursc_graph::types::VertexId;
use neursc_graph::Graph;

/// Runs up to `max_rounds` refinement passes; returns the number of rounds
/// actually performed (stops early at a fixed point).
pub fn global_refinement(q: &Graph, g: &Graph, cs: &mut CandidateSets, max_rounds: usize) -> usize {
    let mut meter = crate::budget::FilterBudget::UNBOUNDED.meter();
    let (rounds, exhausted) = global_refinement_metered(q, g, cs, max_rounds, &mut meter);
    debug_assert!(!exhausted, "unbounded meter cannot trip");
    rounds
}

/// [`global_refinement`] charging one step per candidate-pair test to the
/// supplied meter. Returns `(rounds completed, budget exhausted)`.
///
/// Exhaustion here degrades gracefully instead of erroring: refinement only
/// removes provably-impossible candidates, so stopping at any point leaves
/// `cs` complete (Definition 2) — merely less tight. A query vertex whose
/// pass was cut short keeps its pre-round candidate list.
pub fn global_refinement_metered(
    q: &Graph,
    g: &Graph,
    cs: &mut CandidateSets,
    max_rounds: usize,
    meter: &mut crate::budget::WorkMeter,
) -> (usize, bool) {
    for round in 0..max_rounds {
        let mut changed = false;
        for u in q.vertices() {
            let mut survivors: Vec<VertexId> = Vec::with_capacity(cs.sets[u as usize].len());
            for &v in &cs.sets[u as usize] {
                if meter.charge(1).is_err() {
                    // Abandon the partial survivor list: the untested tail
                    // must be retained, so leave CS(u) as-is and stop.
                    return (round, true);
                }
                if pair_passes(q, g, cs, u, v) {
                    survivors.push(v);
                }
            }
            if survivors.len() != cs.sets[u as usize].len() {
                changed = true;
                cs.sets[u as usize] = survivors;
            }
        }
        if !changed {
            return (round + 1, false);
        }
    }
    (max_rounds, false)
}

/// The semi-perfect-matching test for one candidate pair `(u, v)`.
fn pair_passes(q: &Graph, g: &Graph, cs: &CandidateSets, u: VertexId, v: VertexId) -> bool {
    let nu = q.neighbors(u);
    let nv = g.neighbors(v);
    if nv.len() < nu.len() {
        return false;
    }
    let mut b = BipartiteGraph::new(nu.len(), nv.len());
    for (i, &u2) in nu.iter().enumerate() {
        for (j, &v2) in nv.iter().enumerate() {
            if cs.contains(u2, v2) {
                b.add_edge(i, j);
            }
        }
    }
    has_left_saturating_matching(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::local_pruning;
    use crate::profile::{paper_data_graph, paper_query_graph};

    #[test]
    fn paper_example_refinement_reaches_final_sets() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let mut cs = local_pruning(&q, &g, 1);
        global_refinement(&q, &g, &mut cs, 4);
        // Example 1's final candidate sets.
        assert_eq!(cs.get(0), &[0]); // CS(u1) = {v1}
        assert_eq!(cs.get(1), &[3]); // CS(u2) = {v4}
        assert_eq!(cs.get(2), &[4, 5]); // CS(u3) = {v5, v6}
        assert_eq!(cs.get(3), &[9, 10]); // CS(u4) = {v10, v11}
    }

    #[test]
    fn refinement_is_monotone_shrinking() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs0 = local_pruning(&q, &g, 1);
        let mut cs1 = cs0.clone();
        global_refinement(&q, &g, &mut cs1, 1);
        let mut cs2 = cs0.clone();
        global_refinement(&q, &g, &mut cs2, 2);
        for u in q.vertices() {
            for &v in cs2.get(u) {
                assert!(cs1.contains(u, v));
            }
            for &v in cs1.get(u) {
                assert!(cs0.contains(u, v));
            }
        }
    }

    #[test]
    fn refinement_preserves_known_match() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let mut cs = local_pruning(&q, &g, 1);
        global_refinement(&q, &g, &mut cs, 8);
        for (u, v) in [(0u32, 0u32), (1, 3), (2, 4), (3, 9)] {
            assert!(
                cs.contains(u, v),
                "refinement dropped true match pair ({u},{v})"
            );
        }
    }

    #[test]
    fn fixed_point_stops_early() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let mut cs = local_pruning(&q, &g, 1);
        let rounds = global_refinement(&q, &g, &mut cs, 100);
        assert!(
            rounds < 100,
            "should reach a fixed point quickly, ran {rounds}"
        );
        // Re-running changes nothing.
        let before = cs.clone();
        global_refinement(&q, &g, &mut cs, 1);
        assert_eq!(before, cs);
    }

    #[test]
    fn zero_rounds_is_a_noop() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let mut cs = local_pruning(&q, &g, 1);
        let before = cs.clone();
        let rounds = global_refinement(&q, &g, &mut cs, 0);
        assert_eq!(rounds, 0);
        assert_eq!(before, cs);
    }
}
