//! Subgraph *homomorphism* counting.
//!
//! The paper (§2.2) notes subgraph counting can also be defined over
//! homomorphisms — the same mapping conditions minus injectivity — and that
//! NeurSC naturally handles that semantics. This module provides the exact
//! homomorphism counter so workloads can be generated under either
//! semantics.

use crate::candidates::CandidateSets;
use crate::enumerate::{CountOutcome, CountResult};
use crate::filter::{filter_candidates, FilterConfig};
use crate::ordering::build_order;
use neursc_graph::types::VertexId;
use neursc_graph::Graph;

/// Counts label-preserving, edge-preserving (not necessarily injective)
/// mappings of `q` into `g` with the given expansion budget.
pub fn count_homomorphisms(q: &Graph, g: &Graph, budget: u64) -> CountResult {
    let cs = filter_candidates(q, g, &FilterConfig::default());
    count_homomorphisms_with_candidates(q, g, &cs, budget)
}

/// Homomorphism counting over precomputed candidate sets.
///
/// Candidate sets produced for isomorphism are safe here too: the local
/// pruning conditions (label equality, degree, profile subsumption) are
/// *not* all necessary for homomorphisms (a homomorphism can fold query
/// vertices together, so `d(v) ≥ d(u)` need not hold). We therefore only
/// use the label partition for candidates, ignoring degree/profile pruning.
pub fn count_homomorphisms_with_candidates(
    q: &Graph,
    g: &Graph,
    _cs: &CandidateSets,
    budget: u64,
) -> CountResult {
    if q.n_vertices() == 0 {
        return CountResult {
            count: 1,
            outcome: CountOutcome::Complete,
            expansions: 0,
        };
    }
    // Label-only candidates (safe for homomorphisms).
    let n_labels = g.n_labels().max(q.n_labels());
    let mut by_label: Vec<Vec<VertexId>> = vec![Vec::new(); n_labels];
    for v in g.vertices() {
        by_label[g.label(v) as usize].push(v);
    }
    let sets: Vec<Vec<VertexId>> = q
        .vertices()
        .map(|u| {
            by_label
                .get(q.label(u) as usize)
                .cloned()
                .unwrap_or_default()
        })
        .collect();
    let cs = CandidateSets { sets };
    if cs.any_empty() {
        return CountResult {
            count: 0,
            outcome: CountOutcome::Complete,
            expansions: 0,
        };
    }
    let order = build_order(q, &cs);

    struct St<'a> {
        g: &'a Graph,
        cs: &'a CandidateSets,
        order: &'a crate::ordering::MatchingOrder,
        mapping: Vec<VertexId>,
        count: u64,
        expansions: u64,
        budget: u64,
        exhausted: bool,
    }
    impl St<'_> {
        fn recurse(&mut self, depth: usize) {
            if depth == self.order.order.len() {
                self.count += 1;
                return;
            }
            let u = self.order.order[depth];
            let backward = &self.order.backward[depth];
            for idx in 0..self.cs.get(u).len() {
                if self.exhausted {
                    return;
                }
                self.expansions += 1;
                if self.expansions > self.budget {
                    self.exhausted = true;
                    return;
                }
                let v = self.cs.get(u)[idx];
                let ok = backward
                    .iter()
                    .all(|&j| self.g.has_edge(v, self.mapping[j]));
                if !ok {
                    continue;
                }
                self.mapping[depth] = v;
                self.recurse(depth + 1);
            }
        }
    }
    let mut st = St {
        g,
        cs: &cs,
        order: &order,
        mapping: vec![0; q.n_vertices()],
        count: 0,
        expansions: 0,
        budget,
        exhausted: false,
    };
    st.recurse(0);
    CountResult {
        count: st.count,
        outcome: if st.exhausted {
            CountOutcome::BudgetExhausted
        } else {
            CountOutcome::Complete
        },
        expansions: st.expansions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::count_embeddings;
    use neursc_graph::Graph;

    #[test]
    fn homomorphisms_at_least_embeddings() {
        let g = crate::profile::paper_data_graph();
        let q = crate::profile::paper_query_graph();
        let hom = count_homomorphisms(&q, &g, 1_000_000).exact().unwrap();
        let emb = count_embeddings(&q, &g, 1_000_000).exact().unwrap();
        assert!(hom >= emb);
    }

    #[test]
    fn single_edge_hom_count_is_directed_edge_count() {
        // Unlabeled single-edge query: homomorphisms = 2|E| (each edge in
        // both orientations; no folding since adjacent copies need an edge
        // and the graph is loopless).
        let g = Graph::from_edges(4, &[0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let q = Graph::from_edges(2, &[0, 0], &[(0, 1)]).unwrap();
        let hom = count_homomorphisms(&q, &g, 100_000).exact().unwrap();
        assert_eq!(hom, 6);
    }

    #[test]
    fn path2_homs_can_fold() {
        // Query path u0-u1-u2 (all label 0) in a single edge a-b:
        // homomorphisms map u0,u2 to the same vertex: a-b-a and b-a-b → 2.
        // Embeddings: 0 (needs 3 distinct vertices).
        let g = Graph::from_edges(2, &[0, 0], &[(0, 1)]).unwrap();
        let q = Graph::from_edges(3, &[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(count_homomorphisms(&q, &g, 1000).exact(), Some(2));
        assert_eq!(count_embeddings(&q, &g, 1000).exact(), Some(0));
    }

    #[test]
    fn triangle_has_no_homomorphism_into_bipartite() {
        let g = Graph::from_edges(4, &[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let tri = Graph::from_edges(3, &[0; 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(count_homomorphisms(&tri, &g, 10_000).exact(), Some(0));
    }

    #[test]
    fn budget_applies_to_homomorphisms() {
        let n = 10;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(n, &vec![0; n], &edges).unwrap();
        let q = Graph::from_edges(4, &[0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let r = count_homomorphisms(&q, &g, 20);
        assert_eq!(r.outcome, CountOutcome::BudgetExhausted);
    }
}
