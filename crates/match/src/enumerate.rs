//! Backtracking subgraph-isomorphism counting (ground truth).
//!
//! Counts the injective, label-preserving, edge-preserving mappings of
//! Definition 1 — *embeddings*, which is what the paper's Figure 1 example
//! counts ("there are three subgraph matches of q in G"). The search
//! carries a deterministic expansion budget which plays the role of the
//! paper's 30-minute GraphQL cutoff: a query whose exact count exceeds the
//! budget is reported [`CountOutcome::BudgetExhausted`] and excluded from
//! workloads, mirroring "query graphs whose ground-truth counts can be
//! computed within 30 minutes are selected".

use crate::candidates::CandidateSets;
use crate::filter::{filter_candidates, FilterConfig};
use crate::ordering::{build_order, MatchingOrder};
use neursc_graph::types::VertexId;
use neursc_graph::Graph;

/// Whether the search ran to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountOutcome {
    /// The count is exact.
    Complete,
    /// The expansion budget ran out; `count` is a partial lower bound.
    BudgetExhausted,
}

/// Result of a counting run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountResult {
    /// Number of embeddings found (exact iff `outcome == Complete`).
    pub count: u64,
    /// Completion status.
    pub outcome: CountOutcome,
    /// Candidate-extension attempts performed (the budget unit).
    pub expansions: u64,
}

impl CountResult {
    /// `Some(count)` iff the search completed.
    pub fn exact(&self) -> Option<u64> {
        match self.outcome {
            CountOutcome::Complete => Some(self.count),
            CountOutcome::BudgetExhausted => None,
        }
    }

    /// The count as a **lower bound** on the true number of embeddings —
    /// exact when the search completed, the partial tally when the budget
    /// ran out. This is the only sound reading of `count` after a
    /// [`CountOutcome::BudgetExhausted`] run; callers that need exactness
    /// must go through [`CountResult::exact`]. (Audited in this repo:
    /// `workloads::ground_truth`, the CLI and the bench harness all use
    /// `exact()`; the oracle crate asserts the bound on fuzzed cases.)
    pub fn lower_bound(&self) -> u64 {
        self.count
    }
}

/// Counts embeddings of `q` in `g` with default filtering and the given
/// expansion budget.
pub fn count_embeddings(q: &Graph, g: &Graph, budget: u64) -> CountResult {
    let cs = filter_candidates(q, g, &FilterConfig::default());
    count_with_candidates(q, g, &cs, budget)
}

/// Counts embeddings using precomputed candidate sets.
pub fn count_with_candidates(q: &Graph, g: &Graph, cs: &CandidateSets, budget: u64) -> CountResult {
    if q.n_vertices() == 0 {
        // The empty query has exactly one (empty) embedding.
        return CountResult {
            count: 1,
            outcome: CountOutcome::Complete,
            expansions: 0,
        };
    }
    if cs.any_empty() {
        return CountResult {
            count: 0,
            outcome: CountOutcome::Complete,
            expansions: 0,
        };
    }
    let order = build_order(q, cs);
    let mut st = SearchState {
        g,
        cs,
        order: &order,
        used: vec![false; g.n_vertices()],
        mapping: vec![0; q.n_vertices()],
        count: 0,
        expansions: 0,
        budget,
        exhausted: false,
    };
    st.recurse(0);
    CountResult {
        count: st.count,
        outcome: if st.exhausted {
            CountOutcome::BudgetExhausted
        } else {
            CountOutcome::Complete
        },
        expansions: st.expansions,
    }
}

struct SearchState<'a> {
    g: &'a Graph,
    cs: &'a CandidateSets,
    order: &'a MatchingOrder,
    used: Vec<bool>,
    /// `mapping[depth]` = data vertex matched at that depth.
    mapping: Vec<VertexId>,
    count: u64,
    expansions: u64,
    budget: u64,
    exhausted: bool,
}

impl SearchState<'_> {
    fn recurse(&mut self, depth: usize) {
        if depth == self.order.order.len() {
            self.count += 1;
            return;
        }
        let u = self.order.order[depth];
        // Iterate the smallest available candidate source: either CS(u) or
        // the neighborhood of one matched backward neighbor.
        let backward = &self.order.backward[depth];
        let from_neighbors = backward
            .iter()
            .map(|&j| self.mapping[j])
            .min_by_key(|&v| self.g.degree(v));
        let cands: &[VertexId] = match from_neighbors {
            Some(v) if self.g.degree(v) < self.cs.get(u).len() => self.g.neighbors(v),
            _ => self.cs.get(u),
        };
        let via_neighbors =
            matches!(from_neighbors, Some(v) if self.g.degree(v) < self.cs.get(u).len());

        for &v in cands {
            if self.exhausted {
                return;
            }
            self.expansions += 1;
            if self.expansions > self.budget {
                self.exhausted = true;
                return;
            }
            if self.used[v as usize] {
                continue;
            }
            if via_neighbors && !self.cs.contains(u, v) {
                continue;
            }
            // Edge consistency with every backward neighbor.
            let ok = backward
                .iter()
                .all(|&j| self.g.has_edge(v, self.mapping[j]));
            if !ok {
                continue;
            }
            self.used[v as usize] = true;
            self.mapping[depth] = v;
            self.recurse(depth + 1);
            self.used[v as usize] = false;
        }
    }
}

/// Brute-force embedding counter for testing: tries every injective
/// label-preserving assignment. Exponential — only for tiny graphs.
pub fn brute_force_count(q: &Graph, g: &Graph) -> u64 {
    fn rec(q: &Graph, g: &Graph, depth: usize, used: &mut [bool], map: &mut [VertexId]) -> u64 {
        if depth == q.n_vertices() {
            return 1;
        }
        let u = depth as VertexId;
        let mut total = 0;
        for v in g.vertices() {
            if used[v as usize] || g.label(v) != q.label(u) {
                continue;
            }
            let ok = q
                .neighbors(u)
                .iter()
                .filter(|&&w| (w as usize) < depth)
                .all(|&w| g.has_edge(v, map[w as usize]));
            if !ok {
                continue;
            }
            used[v as usize] = true;
            map[depth] = v;
            total += rec(q, g, depth + 1, used, map);
            used[v as usize] = false;
        }
        total
    }
    let mut used = vec![false; g.n_vertices()];
    let mut map = vec![0; q.n_vertices()];
    rec(q, g, 0, &mut used, &mut map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{paper_data_graph, paper_query_graph};
    use neursc_graph::Graph;

    #[test]
    fn paper_example_has_three_matches() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let r = count_embeddings(&q, &g, 1_000_000);
        assert_eq!(r.exact(), Some(3));
        assert_eq!(brute_force_count(&q, &g), 3);
    }

    #[test]
    fn triangle_in_k4_counts_labelled_embeddings() {
        // K4 unlabeled: each unordered triangle has 3! = 6 embeddings;
        // C(4,3) = 4 triangles → 24 embeddings.
        let k4 = Graph::from_edges(
            4,
            &[0; 4],
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        let tri = Graph::from_edges(3, &[0; 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let r = count_embeddings(&tri, &k4, 1_000_000);
        assert_eq!(r.exact(), Some(24));
    }

    #[test]
    fn labels_restrict_matches() {
        let g = Graph::from_edges(4, &[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let q = Graph::from_edges(2, &[0, 1], &[(0, 1)]).unwrap();
        // Edges with label pattern (0,1): (0,1), (2,1), (2,3) → 3 embeddings.
        let r = count_embeddings(&q, &g, 1_000);
        assert_eq!(r.exact(), Some(3));
    }

    #[test]
    fn zero_matches_when_label_absent() {
        let g = paper_data_graph();
        let q = Graph::from_edges(2, &[0, 9], &[(0, 1)]).unwrap();
        let r = count_embeddings(&q, &g, 1_000);
        assert_eq!(r.exact(), Some(0));
        assert_eq!(r.expansions, 0); // short-circuited by empty CS
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Dense unlabeled graph with a permissive query → huge count.
        let n = 12;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(n, &vec![0; n], &edges).unwrap();
        let q = Graph::from_edges(4, &[0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let r = count_embeddings(&q, &g, 50);
        assert_eq!(r.outcome, CountOutcome::BudgetExhausted);
        assert!(r.exact().is_none());
        assert!(r.expansions >= 50);
        // The partial tally is still a valid lower bound on the true count.
        let truth = brute_force_count(&q, &g);
        assert!(r.lower_bound() <= truth);
    }

    #[test]
    fn empty_query_has_one_embedding() {
        let g = paper_data_graph();
        let q = Graph::from_edges(0, &[], &[]).unwrap();
        assert_eq!(count_embeddings(&q, &g, 10).exact(), Some(1));
    }

    #[test]
    fn single_vertex_query_counts_label_frequency() {
        let g = paper_data_graph();
        let q = Graph::from_edges(1, &[2], &[]).unwrap(); // label C
        assert_eq!(count_embeddings(&q, &g, 1_000).exact(), Some(5));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use neursc_graph::generate::erdos_renyi;
        use neursc_graph::sample::{sample_query, QuerySampler};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for seed in 0..6u64 {
            let g = erdos_renyi(20, 45, 3, seed);
            if let Some(q) = sample_query(&g, &QuerySampler::induced(4), &mut rng) {
                let fast = count_embeddings(&q, &g, 10_000_000).exact().unwrap();
                let slow = brute_force_count(&q, &g);
                assert_eq!(fast, slow, "mismatch on seed {seed}");
                assert!(fast >= 1, "sampled query must occur at least once");
            }
        }
    }

    #[test]
    fn disconnected_query_counts_product_like_embeddings() {
        // Query: two independent edges; data: path of 4 distinctly labeled.
        let g = Graph::from_edges(4, &[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let q = Graph::from_edges(4, &[0, 1, 0, 1], &[(0, 1), (2, 3)]).unwrap();
        let fast = count_embeddings(&q, &g, 100_000).exact().unwrap();
        assert_eq!(fast, brute_force_count(&q, &g));
    }
}

/// Collects the set of data vertices participating in **any** embedding of
/// `q` (within the expansion budget). This is the vertex set of the
/// paper's "perfect substructure" oracle (`NeurSC w/ PS`, Fig. 11):
/// ground-truth matches define exactly which data vertices matter.
///
/// Returns `None` if the budget is exhausted before the enumeration
/// completes (the set would be incomplete).
pub fn matched_vertex_set(q: &Graph, g: &Graph, budget: u64) -> Option<Vec<VertexId>> {
    let cs = filter_candidates(q, g, &FilterConfig::default());
    if q.n_vertices() == 0 || cs.any_empty() {
        return Some(Vec::new());
    }
    let order = build_order(q, &cs);
    struct St<'a> {
        g: &'a Graph,
        cs: &'a CandidateSets,
        order: &'a MatchingOrder,
        used: Vec<bool>,
        mapping: Vec<VertexId>,
        hit: Vec<bool>,
        expansions: u64,
        budget: u64,
        exhausted: bool,
    }
    impl St<'_> {
        fn recurse(&mut self, depth: usize) {
            if depth == self.order.order.len() {
                for &v in &self.mapping {
                    self.hit[v as usize] = true;
                }
                return;
            }
            let u = self.order.order[depth];
            for i in 0..self.cs.get(u).len() {
                if self.exhausted {
                    return;
                }
                self.expansions += 1;
                if self.expansions > self.budget {
                    self.exhausted = true;
                    return;
                }
                let v = self.cs.get(u)[i];
                if self.used[v as usize] {
                    continue;
                }
                let ok = self.order.backward[depth]
                    .iter()
                    .all(|&j| self.g.has_edge(v, self.mapping[j]));
                if !ok {
                    continue;
                }
                self.used[v as usize] = true;
                self.mapping[depth] = v;
                self.recurse(depth + 1);
                self.used[v as usize] = false;
            }
        }
    }
    let mut st = St {
        g,
        cs: &cs,
        order: &order,
        used: vec![false; g.n_vertices()],
        mapping: vec![0; q.n_vertices()],
        hit: vec![false; g.n_vertices()],
        expansions: 0,
        budget,
        exhausted: false,
    };
    st.recurse(0);
    if st.exhausted {
        return None;
    }
    Some(
        (0..g.n_vertices() as VertexId)
            .filter(|&v| st.hit[v as usize])
            .collect(),
    )
}

#[cfg(test)]
mod matched_set_tests {
    use super::*;
    use crate::profile::{paper_data_graph, paper_query_graph};

    #[test]
    fn paper_example_matched_vertices() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        // The 3 matches use v1, v4, {v5,v6}, {v10,v11} = ids {0,3,4,5,9,10}.
        let set = matched_vertex_set(&q, &g, 1_000_000).unwrap();
        assert_eq!(set, vec![0, 3, 4, 5, 9, 10]);
    }

    #[test]
    fn zero_match_queries_give_empty_set() {
        let g = paper_data_graph();
        let q = neursc_graph::Graph::from_edges(2, &[0, 9], &[(0, 1)]).unwrap();
        assert_eq!(
            matched_vertex_set(&q, &g, 1_000).unwrap(),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let n = 12;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        let g = neursc_graph::Graph::from_edges(n, &vec![0; n], &edges).unwrap();
        let q = neursc_graph::Graph::from_edges(4, &[0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(matched_vertex_set(&q, &g, 10).is_none());
    }

    #[test]
    fn matched_set_is_subset_of_candidates() {
        use neursc_graph::generate::erdos_renyi;
        use neursc_graph::sample::{sample_query, QuerySampler};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = erdos_renyi(40, 120, 3, 1);
        if let Some(q) = sample_query(&g, &QuerySampler::induced(4), &mut rng) {
            let set = matched_vertex_set(&q, &g, 100_000_000).unwrap();
            assert!(!set.is_empty()); // induced sampled query matches itself
            let cs = filter_candidates(&q, &g, &FilterConfig::default());
            let union = cs.union();
            for v in set {
                assert!(union.binary_search(&v).is_ok());
            }
        }
    }
}
