//! Shared, thread-safe cache of data-graph vertex profiles.
//!
//! Every query filtered against a data graph `G` needs `all_profiles(G, r)`
//! — by far the most expensive graph-wide precomputation in the filtering
//! pipeline (a BFS per vertex for `r > 1`). The profiles depend only on
//! `(G, r)`, so across a query batch they can be computed once and shared.
//!
//! Entries are keyed by [`Graph::content_fingerprint`], not by pointer or
//! name: a graph rebuilt with any change to labels or edges hashes to a
//! different key and can never be served stale profiles (see
//! `stale_profiles_are_never_served` below). By default the cache holds an
//! unbounded list of entries — in practice one data graph × one or two
//! radii — each behind an `Arc` so concurrent readers share one
//! allocation. Long-running servers that see many distinct data graphs can
//! bound it with [`ProfileCache::with_capacity`]: over-capacity inserts
//! evict the least-recently-used entry and count it in
//! [`ProfileCache::evicted_total`].

use crate::profile::{all_profiles, Profile};
use neursc_graph::Graph;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct CacheEntry {
    fingerprint: u64,
    radius: u32,
    profiles: Arc<Vec<Profile>>,
    /// Recency stamp from the cache-wide tick, updated on every hit (atomic
    /// so hits stay on the shared read lock).
    last_used: AtomicU64,
}

/// One exported cache entry — see [`ProfileCache::export_entries`].
#[derive(Debug, Clone)]
pub struct ProfileExport {
    /// Content fingerprint of the profiled graph.
    pub fingerprint: u64,
    /// Profile radius the entry was computed at.
    pub radius: u32,
    /// The cached profiles (shared, not copied).
    pub profiles: Arc<Vec<Profile>>,
}

/// Thread-safe `(graph, radius) → all_profiles` cache.
///
/// Readers take a shared lock; a miss computes outside any lock and then
/// double-checks under the write lock, so concurrent first requests for the
/// same graph do redundant work at worst, never deadlock or corruption.
#[derive(Debug, Default)]
pub struct ProfileCache {
    entries: RwLock<Vec<CacheEntry>>,
    /// Maximum number of entries; 0 = unbounded (the offline default).
    capacity: AtomicUsize,
    /// Monotonic recency clock.
    tick: AtomicU64,
    /// Total entries evicted over the cache's lifetime.
    evicted: AtomicU64,
}

impl ProfileCache {
    /// An empty, unbounded cache (the offline default — nothing is ever
    /// evicted, preserving bit-determinism of repeated runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to at most `capacity` entries (min 1). When
    /// an insert exceeds the bound, the least-recently-used entry is
    /// dropped and counted in [`Self::evicted_total`]; outstanding `Arc`s
    /// to an evicted value stay valid.
    pub fn with_capacity(capacity: usize) -> Self {
        let cache = Self::default();
        cache.capacity.store(capacity.max(1), Ordering::Relaxed);
        cache
    }

    /// Changes the capacity bound (`None` = unbounded). Shrinking takes
    /// effect on the next insert; existing entries are not evicted eagerly.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        self.capacity
            .store(capacity.map_or(0, |c| c.max(1)), Ordering::Relaxed);
    }

    /// Total entries evicted since construction (0 while unbounded).
    pub fn evicted_total(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    fn stamp(&self, e: &CacheEntry) {
        e.last_used
            .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Returns the radius-`r` profiles of `g`, computing and memoizing them
    /// on first request.
    pub fn profiles(&self, g: &Graph, r: u32) -> Arc<Vec<Profile>> {
        self.profiles_traced(g, r).0
    }

    /// [`Self::profiles`] plus observability data: whether the request hit
    /// the cache, and how long a miss spent building the profiles
    /// (`build_ns`, 0 on a hit). The core layer turns these into cache
    /// hit/miss counters and a `filter.profile_build` span.
    pub fn profiles_traced(&self, g: &Graph, r: u32) -> (Arc<Vec<Profile>>, bool, u64) {
        let fp = g.content_fingerprint();
        if let Some(hit) = self.lookup(fp, r) {
            return (hit, true, 0);
        }
        let t0 = std::time::Instant::now();
        let computed = Arc::new(all_profiles(g, r));
        let build_ns = t0.elapsed().as_nanos() as u64;
        (self.insert_or_share(fp, r, computed), false, build_ns)
    }

    fn insert_or_share(&self, fp: u64, r: u32, computed: Arc<Vec<Profile>>) -> Arc<Vec<Profile>> {
        let mut entries = self.entries.write();
        // Another thread may have inserted while we computed; keep the
        // existing entry so all readers share one allocation.
        if let Some(e) = entries
            .iter()
            .find(|e| e.fingerprint == fp && e.radius == r)
        {
            self.stamp(e);
            return Arc::clone(&e.profiles);
        }
        let entry = CacheEntry {
            fingerprint: fp,
            radius: r,
            profiles: Arc::clone(&computed),
            last_used: AtomicU64::new(0),
        };
        self.stamp(&entry);
        entries.push(entry);
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap > 0 {
            while entries.len() > cap {
                // Evict the least-recently-used entry (smallest stamp).
                let Some(victim) = entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                    .map(|(i, _)| i)
                else {
                    break;
                };
                entries.swap_remove(victim);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        computed
    }

    /// The active capacity bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        match self.capacity.load(Ordering::Relaxed) {
            0 => None,
            c => Some(c),
        }
    }

    /// Every cached entry, least recently used first, so replaying the
    /// list through [`Self::import`] into an empty cache reproduces the
    /// same LRU ordering (and therefore the same future eviction order).
    /// Values are shared (`Arc`), not copied — this is the warm-state
    /// export half of snapshot/restore for resident servers.
    pub fn export_entries(&self) -> Vec<ProfileExport> {
        let entries = self.entries.read();
        let mut ordered: Vec<&CacheEntry> = entries.iter().collect();
        ordered.sort_by_key(|e| e.last_used.load(Ordering::Relaxed));
        ordered
            .into_iter()
            .map(|e| ProfileExport {
                fingerprint: e.fingerprint,
                radius: e.radius,
                profiles: Arc::clone(&e.profiles),
            })
            .collect()
    }

    /// Inserts a precomputed entry — the warm-state restore half of
    /// snapshot/restore. Routes through the normal insert path: an entry
    /// already present is shared rather than replaced, and the capacity
    /// bound evicts the least-recently-used entry as usual.
    pub fn import(&self, fingerprint: u64, radius: u32, profiles: Arc<Vec<Profile>>) {
        let _ = self.insert_or_share(fingerprint, radius, profiles);
    }

    /// Overwrites the lifetime eviction counter, so a restored server's
    /// `cache.*.evicted` series continues where the snapshot left off
    /// instead of restarting from zero.
    pub fn restore_evicted_total(&self, evicted: u64) {
        self.evicted.store(evicted, Ordering::Relaxed);
    }

    /// Whether `(g, r)` is already memoized, without computing anything.
    pub fn contains(&self, g: &Graph, r: u32) -> bool {
        self.lookup(g.content_fingerprint(), r).is_some()
    }

    fn lookup(&self, fp: u64, r: u32) -> Option<Arc<Vec<Profile>>> {
        self.entries
            .read()
            .iter()
            .find(|e| e.fingerprint == fp && e.radius == r)
            .map(|e| {
                self.stamp(e);
                Arc::clone(&e.profiles)
            })
    }

    /// Number of memoized `(graph, radius)` entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops all entries (outstanding `Arc`s stay valid).
    pub fn clear(&self) {
        self.entries.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{paper_data_graph, vertex_profile};

    #[test]
    fn second_request_is_served_from_cache() {
        let cache = ProfileCache::new();
        let g = paper_data_graph();
        let a = cache.profiles(&g, 2);
        let b = cache.profiles(&g, 2);
        assert!(Arc::ptr_eq(&a, &b), "second request recomputed");
        assert_eq!(cache.len(), 1);
        for v in g.vertices() {
            assert_eq!(a[v as usize], vertex_profile(&g, v, 2));
        }
    }

    #[test]
    fn radii_are_cached_independently() {
        let cache = ProfileCache::new();
        let g = paper_data_graph();
        let r1 = cache.profiles(&g, 1);
        let r2 = cache.profiles(&g, 2);
        assert_eq!(cache.len(), 2);
        assert_ne!(r1[3], r2[3]); // v4's 2-ball sees strictly more labels
    }

    #[test]
    fn stale_profiles_are_never_served() {
        // A "mutated" data graph (graphs are immutable, so mutation means a
        // rebuilt graph with different content) must get fresh profiles.
        let cache = ProfileCache::new();
        let g = paper_data_graph();
        let before = cache.profiles(&g, 1);

        // Same topology, one label changed (v1: A → C).
        let mut labels: Vec<u32> = g.labels().to_vec();
        labels[0] = 2;
        let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.u, e.v)).collect();
        let mutated = Graph::from_edges(g.n_vertices(), &labels, &edges).unwrap();

        let after = cache.profiles(&mutated, 1);
        assert_eq!(cache.len(), 2, "mutated graph must occupy its own entry");
        assert!(!Arc::ptr_eq(&before, &after));
        // v4 is adjacent to v1, so its profile must reflect the new label.
        assert_eq!(after[3], vertex_profile(&mutated, 3, 1));
        assert_ne!(after[3], before[3]);
        // The original graph still hits its own (unchanged) entry.
        assert!(Arc::ptr_eq(&before, &cache.profiles(&g, 1)));
    }

    #[test]
    fn concurrent_first_requests_converge_to_one_entry() {
        let cache = ProfileCache::new();
        let g = paper_data_graph();
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let p = cache.profiles(&g, 2);
                    assert_eq!(p.len(), g.n_vertices());
                });
            }
        })
        .unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = ProfileCache::with_capacity(2);
        let g = paper_data_graph();
        let r1 = cache.profiles(&g, 1);
        let _r2 = cache.profiles(&g, 2);
        // Touch radius 1 so radius 2 becomes the LRU victim.
        assert!(Arc::ptr_eq(&r1, &cache.profiles(&g, 1)));
        let _r3 = cache.profiles(&g, 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evicted_total(), 1);
        assert!(cache.contains(&g, 1), "recently-used entry survived");
        assert!(cache.contains(&g, 3), "new entry present");
        assert!(!cache.contains(&g, 2), "LRU entry evicted");
        // The evicted value is recomputed on demand, correctly.
        let fresh = cache.profiles(&g, 2);
        assert_eq!(fresh[0], vertex_profile(&g, 0, 2));
        assert_eq!(cache.evicted_total(), 2, "recompute evicted the next LRU");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ProfileCache::new();
        let g = paper_data_graph();
        for r in 1..=6 {
            let _ = cache.profiles(&g, r);
        }
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.evicted_total(), 0);
    }

    #[test]
    fn set_capacity_takes_effect_on_next_insert() {
        let cache = ProfileCache::new();
        let g = paper_data_graph();
        let _ = cache.profiles(&g, 1);
        let _ = cache.profiles(&g, 2);
        let _ = cache.profiles(&g, 3);
        cache.set_capacity(Some(2));
        assert_eq!(cache.len(), 3, "shrink is lazy");
        let _ = cache.profiles(&g, 4);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evicted_total(), 2);
    }

    #[test]
    fn export_import_roundtrip_preserves_entries_and_lru_order() {
        let cache = ProfileCache::with_capacity(2);
        let g = paper_data_graph();
        let _ = cache.profiles(&g, 1);
        let _ = cache.profiles(&g, 2);
        let _ = cache.profiles(&g, 1); // touch r=1 → r=2 is now LRU
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 2);
        assert_eq!(exported[0].radius, 2, "LRU entry exports first");
        assert_eq!(exported[1].radius, 1);

        let restored = ProfileCache::with_capacity(2);
        for e in &exported {
            restored.import(e.fingerprint, e.radius, Arc::clone(&e.profiles));
        }
        restored.restore_evicted_total(cache.evicted_total());
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.evicted_total(), cache.evicted_total());
        assert_eq!(restored.capacity(), Some(2));
        // Imported values are shared, and an insert evicts the same LRU
        // victim (r=2) the original would have chosen.
        assert!(Arc::ptr_eq(
            &exported[1].profiles,
            &restored.profiles(&g, 1)
        ));
        let _ = restored.profiles(&g, 3);
        assert!(
            !restored.contains(&g, 2),
            "restored LRU order drives eviction"
        );
        assert!(restored.contains(&g, 1));
    }

    #[test]
    fn clear_empties_but_keeps_outstanding_arcs_valid() {
        let cache = ProfileCache::new();
        let g = paper_data_graph();
        let p = cache.profiles(&g, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(p.len(), g.n_vertices()); // still readable
    }
}
