//! Polynomial-time exact homomorphism counting for **tree** queries.
//!
//! Counting homomorphisms from a tree `T` into any graph `G` is classic
//! dynamic programming over a rooted orientation of `T`
//! (`O(|V(T)| · (|V(G)| + |E(G)|))`): for a root `r`,
//!
//! ```text
//! hom(T, G) = Σ_v dp[r → v],
//! dp[u → v] = [f_l(u) = f_l(v)] · Π_{c ∈ children(u)} Σ_{w ∈ N(v)} dp[c → w]
//! ```
//!
//! This gives the matching substrate a second, independently-derived exact
//! oracle: on tree queries it must agree with the exponential backtracking
//! homomorphism counter, which is a powerful cross-check (and a fast path
//! for tree-shaped workloads — most of the paper's sparse queries are
//! near-trees).

use crate::enumerate::{CountOutcome, CountResult};
use neursc_graph::types::VertexId;
use neursc_graph::Graph;

/// Whether the query is a tree (connected and `|E| = |V| − 1`).
pub fn is_tree(q: &Graph) -> bool {
    q.n_vertices() > 0
        && q.n_edges() == q.n_vertices() - 1
        && neursc_graph::traversal::is_connected(q)
}

/// Exact homomorphism count of a tree query into `g`.
///
/// Returns `None` if `q` is not a tree (callers fall back to the general
/// counter). Uses `f64` accumulation above `u64::MAX` (tree counts grow
/// fast); the result saturates at `u64::MAX` in that regime.
pub fn count_tree_homomorphisms(q: &Graph, g: &Graph) -> Option<CountResult> {
    if !is_tree(q) {
        return None;
    }
    let nq = q.n_vertices();
    let ng = g.n_vertices();

    // Root at 0; compute a BFS order so children precede parents in the
    // reversed sweep.
    let root: VertexId = 0;
    let mut parent = vec![u32::MAX; nq];
    let mut order = Vec::with_capacity(nq);
    let mut queue = std::collections::VecDeque::new();
    parent[root as usize] = root;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &c in q.neighbors(u) {
            if parent[c as usize] == u32::MAX {
                parent[c as usize] = u;
                queue.push_back(c);
            }
        }
    }
    debug_assert_eq!(order.len(), nq);

    // dp[u][v] — computed bottom-up in reverse BFS order.
    let mut dp = vec![vec![0f64; ng]; nq];
    for &u in order.iter().rev() {
        let children: Vec<VertexId> = q
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&c| parent[c as usize] == u && c != u)
            .collect();
        for v in g.vertices() {
            if g.label(v) != q.label(u) {
                continue;
            }
            let mut prod = 1f64;
            for &c in &children {
                let s: f64 = g
                    .neighbors(v)
                    .iter()
                    .map(|&w| dp[c as usize][w as usize])
                    .sum();
                prod *= s;
                if prod == 0.0 {
                    break;
                }
            }
            dp[u as usize][v as usize] = prod;
        }
    }
    let total: f64 = dp[root as usize].iter().sum();
    let count = if total >= u64::MAX as f64 {
        u64::MAX
    } else {
        total.round() as u64
    };
    Some(CountResult {
        count,
        outcome: CountOutcome::Complete,
        expansions: (nq * ng) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::count_homomorphisms;
    use neursc_graph::generate::erdos_renyi;
    use neursc_graph::Graph;

    #[test]
    fn tree_detection() {
        let path = Graph::from_edges(3, &[0; 3], &[(0, 1), (1, 2)]).unwrap();
        assert!(is_tree(&path));
        let tri = Graph::from_edges(3, &[0; 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert!(!is_tree(&tri));
        let forest = Graph::from_edges(4, &[0; 4], &[(0, 1), (2, 3)]).unwrap();
        assert!(!is_tree(&forest)); // |E| = n−2 and disconnected
        let single = Graph::from_edges(1, &[0], &[]).unwrap();
        assert!(is_tree(&single));
    }

    #[test]
    fn single_vertex_counts_label_frequency() {
        let g = Graph::from_edges(5, &[0, 1, 1, 0, 1], &[(0, 1)]).unwrap();
        let q = Graph::from_edges(1, &[1], &[]).unwrap();
        let r = count_tree_homomorphisms(&q, &g).unwrap();
        assert_eq!(r.count, 3);
    }

    #[test]
    fn single_edge_counts_directed_label_edges() {
        let g = Graph::from_edges(4, &[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let q = Graph::from_edges(2, &[0, 1], &[(0, 1)]).unwrap();
        let r = count_tree_homomorphisms(&q, &g).unwrap();
        assert_eq!(r.count, 3); // (0,1), (2,1), (2,3)
    }

    #[test]
    fn non_tree_queries_are_rejected() {
        let g = Graph::from_edges(3, &[0; 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let tri = g.clone();
        assert!(count_tree_homomorphisms(&tri, &g).is_none());
    }

    #[test]
    fn agrees_with_backtracking_on_random_graphs() {
        for seed in 0..8u64 {
            let g = erdos_renyi(25, 70, 3, seed);
            // Several tree shapes: paths, stars, a caterpillar.
            let trees = [
                Graph::from_edges(3, &[0, 1, 2], &[(0, 1), (1, 2)]).unwrap(),
                Graph::from_edges(4, &[0, 1, 1, 2], &[(0, 1), (0, 2), (0, 3)]).unwrap(),
                Graph::from_edges(5, &[0, 1, 2, 0, 1], &[(0, 1), (1, 2), (2, 3), (2, 4)]).unwrap(),
            ];
            for (i, t) in trees.iter().enumerate() {
                let dp = count_tree_homomorphisms(t, &g).unwrap().count;
                let bt = count_homomorphisms(t, &g, 1_000_000_000).exact().unwrap();
                assert_eq!(dp, bt, "seed {seed}, tree {i}");
            }
        }
    }

    #[test]
    fn dp_is_fast_on_deep_paths() {
        // A 12-vertex path in a 500-vertex graph: exponential search would
        // crawl; DP is O(nq·m).
        let g = erdos_renyi(500, 2500, 2, 3);
        let n = 12;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let q = Graph::from_edges(n as usize, &vec![0; n as usize], &edges).unwrap();
        let r = count_tree_homomorphisms(&q, &g).unwrap();
        // Completing (fast) is the point; any count value is acceptable.
        assert_eq!(r.outcome, CountOutcome::Complete);
    }

    #[test]
    fn zero_when_label_absent() {
        let g = Graph::from_edges(3, &[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        let q = Graph::from_edges(2, &[0, 9], &[(0, 1)]).unwrap();
        assert_eq!(count_tree_homomorphisms(&q, &g).unwrap().count, 0);
    }
}
