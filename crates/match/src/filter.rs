//! The full candidate-filtering pipeline: local pruning + global refinement.
//!
//! This is the GraphQL method the paper adopts (§4(1)), chosen in \[89\] for
//! the best pruning power among the surveyed filters.

use crate::budget::{FilterBudget, FilterError};
use crate::candidates::{local_pruning_metered, local_pruning_with, CandidateSets};
use crate::refinement::{global_refinement, global_refinement_metered};
use neursc_graph::Graph;

/// Filtering configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// Profile radius `r` for local pruning (paper/GraphQL default: 1).
    pub profile_radius: u32,
    /// Maximum global-refinement rounds (the paper runs the procedure
    /// "multiple times"; 3 reaches the fixed point on all our workloads).
    pub refinement_rounds: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            profile_radius: 1,
            refinement_rounds: 3,
        }
    }
}

/// Runs the full pipeline and returns `CS(u)` for every query vertex.
pub fn filter_candidates(q: &Graph, g: &Graph, cfg: &FilterConfig) -> CandidateSets {
    filter_candidates_with(
        q,
        g,
        cfg,
        &crate::profile::all_profiles(g, cfg.profile_radius),
    )
}

/// [`filter_candidates`] with precomputed data-graph profiles (from a
/// [`crate::cache::ProfileCache`]); identical output by construction.
pub fn filter_candidates_with(
    q: &Graph,
    g: &Graph,
    cfg: &FilterConfig,
    g_profiles: &[crate::profile::Profile],
) -> CandidateSets {
    filter_candidates_timed(q, g, cfg, g_profiles).0
}

/// Per-phase wall timings of one filtering run, as plain data.
///
/// This crate stays observability-agnostic: the core layer turns these
/// numbers into tracing spans and metrics. Nanosecond fields are real wall
/// time and deliberately **not** part of any output-equality guarantee,
/// which is why they live outside [`FilterOutput`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Wall time of local pruning (phase 1), nanoseconds.
    pub local_prune_ns: u64,
    /// Wall time of global refinement (phase 2), nanoseconds.
    pub refine_ns: u64,
    /// Candidate-pair tests spent, when metered (0 on the unmetered path).
    pub steps: u64,
}

/// [`filter_candidates_with`] plus a per-phase [`StageBreakdown`].
///
/// The unmetered hot path: timing costs two `Instant::now` calls per phase,
/// `steps` is reported as 0 (counting pair tests is what the budgeted path
/// is for).
pub fn filter_candidates_timed(
    q: &Graph,
    g: &Graph,
    cfg: &FilterConfig,
    g_profiles: &[crate::profile::Profile],
) -> (CandidateSets, StageBreakdown) {
    let t0 = std::time::Instant::now();
    let mut cs = local_pruning_with(q, g, cfg.profile_radius, g_profiles);
    let local_prune_ns = t0.elapsed().as_nanos() as u64;
    let t1 = std::time::Instant::now();
    if !cs.any_empty() {
        global_refinement(q, g, &mut cs, cfg.refinement_rounds);
    }
    let refine_ns = t1.elapsed().as_nanos() as u64;
    (
        cs,
        StageBreakdown {
            local_prune_ns,
            refine_ns,
            steps: 0,
        },
    )
}

/// Result of a budgeted filtering run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterOutput {
    /// The candidate sets — always complete (Definition 2) when returned.
    pub candidates: CandidateSets,
    /// `true` when the budget ran out during refinement: the sets are sound
    /// but looser than an unbudgeted run would produce.
    pub degraded: bool,
    /// Candidate-pair tests spent.
    pub steps: u64,
}

/// [`filter_candidates_with`] under a [`FilterBudget`].
///
/// The degradation ladder (DESIGN.md, "Failure semantics"):
/// - budget survives both phases → identical to the unbudgeted pipeline;
/// - budget dies during *refinement* → `Ok` with `degraded: true`, the
///   pre-cutoff candidate sets (complete, merely less tight);
/// - budget dies during *local pruning* → `Err(BudgetExhausted)`, because a
///   partially-built candidate set admits no sound estimate at all.
pub fn filter_candidates_budgeted(
    q: &Graph,
    g: &Graph,
    cfg: &FilterConfig,
    g_profiles: &[crate::profile::Profile],
    budget: &FilterBudget,
) -> Result<FilterOutput, FilterError> {
    filter_candidates_budgeted_profiled(q, g, cfg, g_profiles, budget).map(|(out, _)| out)
}

/// [`filter_candidates_budgeted`] plus a per-phase [`StageBreakdown`]
/// (here `steps` is the real metered count, equal to `FilterOutput::steps`).
pub fn filter_candidates_budgeted_profiled(
    q: &Graph,
    g: &Graph,
    cfg: &FilterConfig,
    g_profiles: &[crate::profile::Profile],
    budget: &FilterBudget,
) -> Result<(FilterOutput, StageBreakdown), FilterError> {
    let mut meter = budget.meter();
    let t0 = std::time::Instant::now();
    let mut cs = local_pruning_metered(q, g, cfg.profile_radius, g_profiles, &mut meter)?;
    let local_prune_ns = t0.elapsed().as_nanos() as u64;
    let mut degraded = false;
    let t1 = std::time::Instant::now();
    if !cs.any_empty() {
        let (_, exhausted) =
            global_refinement_metered(q, g, &mut cs, cfg.refinement_rounds, &mut meter);
        degraded = exhausted;
    }
    let refine_ns = t1.elapsed().as_nanos() as u64;
    let steps = meter.spent();
    Ok((
        FilterOutput {
            candidates: cs,
            degraded,
            steps,
        },
        StageBreakdown {
            local_prune_ns,
            refine_ns,
            steps,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{paper_data_graph, paper_query_graph};

    #[test]
    fn default_pipeline_matches_paper_example() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs = filter_candidates(&q, &g, &FilterConfig::default());
        assert_eq!(cs.get(0), &[0]);
        assert_eq!(cs.get(1), &[3]);
        assert_eq!(cs.get(2), &[4, 5]);
        assert_eq!(cs.get(3), &[9, 10]);
    }

    #[test]
    fn zero_refinement_rounds_equals_local_pruning() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cfg = FilterConfig {
            profile_radius: 1,
            refinement_rounds: 0,
        };
        let cs = filter_candidates(&q, &g, &cfg);
        assert_eq!(cs, crate::candidates::local_pruning(&q, &g, 1));
    }

    #[test]
    fn empty_candidates_skip_refinement() {
        let g = paper_data_graph();
        let q = neursc_graph::Graph::from_edges(2, &[0, 9], &[(0, 1)]).unwrap();
        let cs = filter_candidates(&q, &g, &FilterConfig::default());
        assert!(cs.any_empty());
    }

    #[test]
    fn cached_profiles_give_identical_candidates() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cfg = FilterConfig::default();
        let cache = crate::cache::ProfileCache::new();
        let profiles = cache.profiles(&g, cfg.profile_radius);
        assert_eq!(
            filter_candidates_with(&q, &g, &cfg, &profiles),
            filter_candidates(&q, &g, &cfg)
        );
    }

    #[test]
    fn generous_budget_matches_unbudgeted_pipeline() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cfg = FilterConfig::default();
        let profiles = crate::profile::all_profiles(&g, cfg.profile_radius);
        let out =
            filter_candidates_budgeted(&q, &g, &cfg, &profiles, &FilterBudget::UNBOUNDED).unwrap();
        assert!(!out.degraded);
        assert!(out.steps > 0);
        assert_eq!(out.candidates, filter_candidates(&q, &g, &cfg));
    }

    #[test]
    fn zero_budget_errors_in_local_pruning() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cfg = FilterConfig::default();
        let profiles = crate::profile::all_profiles(&g, cfg.profile_radius);
        let err = filter_candidates_budgeted(&q, &g, &cfg, &profiles, &FilterBudget::steps(0))
            .unwrap_err();
        assert!(matches!(
            err,
            FilterError::BudgetExhausted {
                phase: crate::budget::FilterPhase::LocalPruning,
                ..
            }
        ));
    }

    #[test]
    fn refinement_exhaustion_degrades_to_sound_supersets() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cfg = FilterConfig::default();
        let profiles = crate::profile::all_profiles(&g, cfg.profile_radius);
        // Find the cost of local pruning alone, then allow just one more
        // step so refinement is cut off almost immediately.
        let pruning_steps = filter_candidates_budgeted(
            &q,
            &g,
            &FilterConfig {
                refinement_rounds: 0,
                ..cfg
            },
            &profiles,
            &FilterBudget::UNBOUNDED,
        )
        .unwrap()
        .steps;
        let out = filter_candidates_budgeted(
            &q,
            &g,
            &cfg,
            &profiles,
            &FilterBudget::steps(pruning_steps + 1),
        )
        .unwrap();
        assert!(out.degraded);
        // Degraded sets must still contain everything the full pipeline keeps
        // (completeness) and the known true match.
        let full = filter_candidates(&q, &g, &cfg);
        for u in q.vertices() {
            for &v in full.get(u) {
                assert!(
                    out.candidates.contains(u, v),
                    "degraded sets lost ({u},{v})"
                );
            }
        }
        for (u, v) in [(0u32, 0u32), (1, 3), (2, 4), (3, 9)] {
            assert!(out.candidates.contains(u, v));
        }
    }

    #[test]
    fn budgeted_run_is_deterministic() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cfg = FilterConfig::default();
        let profiles = crate::profile::all_profiles(&g, cfg.profile_radius);
        let budget = FilterBudget::steps(40);
        let a = filter_candidates_budgeted(&q, &g, &cfg, &profiles, &budget);
        let b = filter_candidates_budgeted(&q, &g, &cfg, &profiles, &budget);
        assert_eq!(a, b);
    }

    #[test]
    fn query_on_itself_keeps_identity_candidates() {
        // Filtering a graph against itself must keep v ∈ CS(v).
        let g = paper_data_graph();
        let cs = filter_candidates(&g, &g, &FilterConfig::default());
        for v in g.vertices() {
            assert!(cs.contains(v, v), "identity candidate {v} lost");
        }
    }
}
