//! The full candidate-filtering pipeline: local pruning + global refinement.
//!
//! This is the GraphQL method the paper adopts (§4(1)), chosen in \[89\] for
//! the best pruning power among the surveyed filters.

use crate::candidates::{local_pruning_with, CandidateSets};
use crate::refinement::global_refinement;
use neursc_graph::Graph;

/// Filtering configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// Profile radius `r` for local pruning (paper/GraphQL default: 1).
    pub profile_radius: u32,
    /// Maximum global-refinement rounds (the paper runs the procedure
    /// "multiple times"; 3 reaches the fixed point on all our workloads).
    pub refinement_rounds: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            profile_radius: 1,
            refinement_rounds: 3,
        }
    }
}

/// Runs the full pipeline and returns `CS(u)` for every query vertex.
pub fn filter_candidates(q: &Graph, g: &Graph, cfg: &FilterConfig) -> CandidateSets {
    filter_candidates_with(
        q,
        g,
        cfg,
        &crate::profile::all_profiles(g, cfg.profile_radius),
    )
}

/// [`filter_candidates`] with precomputed data-graph profiles (from a
/// [`crate::cache::ProfileCache`]); identical output by construction.
pub fn filter_candidates_with(
    q: &Graph,
    g: &Graph,
    cfg: &FilterConfig,
    g_profiles: &[crate::profile::Profile],
) -> CandidateSets {
    let mut cs = local_pruning_with(q, g, cfg.profile_radius, g_profiles);
    if !cs.any_empty() {
        global_refinement(q, g, &mut cs, cfg.refinement_rounds);
    }
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{paper_data_graph, paper_query_graph};

    #[test]
    fn default_pipeline_matches_paper_example() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs = filter_candidates(&q, &g, &FilterConfig::default());
        assert_eq!(cs.get(0), &[0]);
        assert_eq!(cs.get(1), &[3]);
        assert_eq!(cs.get(2), &[4, 5]);
        assert_eq!(cs.get(3), &[9, 10]);
    }

    #[test]
    fn zero_refinement_rounds_equals_local_pruning() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cfg = FilterConfig {
            profile_radius: 1,
            refinement_rounds: 0,
        };
        let cs = filter_candidates(&q, &g, &cfg);
        assert_eq!(cs, crate::candidates::local_pruning(&q, &g, 1));
    }

    #[test]
    fn empty_candidates_skip_refinement() {
        let g = paper_data_graph();
        let q = neursc_graph::Graph::from_edges(2, &[0, 9], &[(0, 1)]).unwrap();
        let cs = filter_candidates(&q, &g, &FilterConfig::default());
        assert!(cs.any_empty());
    }

    #[test]
    fn cached_profiles_give_identical_candidates() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cfg = FilterConfig::default();
        let cache = crate::cache::ProfileCache::new();
        let profiles = cache.profiles(&g, cfg.profile_radius);
        assert_eq!(
            filter_candidates_with(&q, &g, &cfg, &profiles),
            filter_candidates(&q, &g, &cfg)
        );
    }

    #[test]
    fn query_on_itself_keeps_identity_candidates() {
        // Filtering a graph against itself must keep v ∈ CS(v).
        let g = paper_data_graph();
        let cs = filter_candidates(&g, &g, &FilterConfig::default());
        for v in g.vertices() {
            assert!(cs.contains(v, v), "identity candidate {v} lost");
        }
    }
}
