//! Maximum bipartite matching (Hopcroft–Karp).
//!
//! Global refinement (paper §4(1)) asks, for each candidate pair `(u, v)`,
//! whether the bipartite graph between `N(u)` and `N(v)` admits a
//! *semi-perfect matching* — a matching saturating the query side. That is
//! a maximum-matching query; Hopcroft–Karp answers it in
//! `O(E·√V)`, which matters because it runs once per surviving candidate
//! pair per refinement round.

/// A bipartite graph given as left-side adjacency lists over right-side
/// indices `0..n_right`.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    /// `adj[l]` lists the right vertices adjacent to left vertex `l`.
    pub adj: Vec<Vec<usize>>,
    /// Number of right-side vertices.
    pub n_right: usize,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with the given side sizes.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        BipartiteGraph {
            adj: vec![Vec::new(); n_left],
            n_right,
        }
    }

    /// Adds an edge between left vertex `l` and right vertex `r`.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        debug_assert!(l < self.adj.len() && r < self.n_right);
        self.adj[l].push(r);
    }

    /// Number of left-side vertices.
    pub fn n_left(&self) -> usize {
        self.adj.len()
    }
}

const NIL: usize = usize::MAX;

/// Computes a maximum matching; returns, for each left vertex, its matched
/// right vertex (or `None`).
pub fn max_matching(g: &BipartiteGraph) -> Vec<Option<usize>> {
    let n_left = g.n_left();
    let mut match_l = vec![NIL; n_left];
    let mut match_r = vec![NIL; g.n_right];
    let mut dist = vec![0u32; n_left];
    let mut queue = std::collections::VecDeque::new();

    loop {
        // BFS phase: layer free left vertices.
        queue.clear();
        const INF: u32 = u32::MAX;
        let mut found_augmenting = false;
        for l in 0..n_left {
            if match_l[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        while let Some(l) = queue.pop_front() {
            for &r in &g.adj[l] {
                let l2 = match_r[r];
                if l2 == NIL {
                    found_augmenting = true;
                } else if dist[l2] == INF {
                    dist[l2] = dist[l] + 1;
                    queue.push_back(l2);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint augmenting paths along layers.
        fn dfs(
            l: usize,
            g: &BipartiteGraph,
            dist: &mut [u32],
            match_l: &mut [usize],
            match_r: &mut [usize],
        ) -> bool {
            for i in 0..g.adj[l].len() {
                let r = g.adj[l][i];
                let l2 = match_r[r];
                if l2 == NIL || (dist[l2] == dist[l] + 1 && dfs(l2, g, dist, match_l, match_r)) {
                    match_l[l] = r;
                    match_r[r] = l;
                    return true;
                }
            }
            dist[l] = u32::MAX;
            false
        }
        for l in 0..n_left {
            if match_l[l] == NIL {
                dfs(l, g, &mut dist, &mut match_l, &mut match_r);
            }
        }
    }
    match_l
        .into_iter()
        .map(|r| if r == NIL { None } else { Some(r) })
        .collect()
}

/// Whether a matching saturating the *entire left side* exists — the
/// semi-perfect matching test of the paper's global refinement.
pub fn has_left_saturating_matching(g: &BipartiteGraph) -> bool {
    max_matching(g).iter().all(|m| m.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity() {
        let mut g = BipartiteGraph::new(3, 3);
        for i in 0..3 {
            g.add_edge(i, i);
        }
        let m = max_matching(&g);
        assert_eq!(m, vec![Some(0), Some(1), Some(2)]);
        assert!(has_left_saturating_matching(&g));
    }

    #[test]
    fn augmenting_path_is_found() {
        // l0-{r0}, l1-{r0, r1}: greedy could block l0; HK must augment.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        g.add_edge(0, 0);
        assert!(has_left_saturating_matching(&g));
    }

    #[test]
    fn hall_violation_detected() {
        // Three left vertices all confined to two right vertices.
        let mut g = BipartiteGraph::new(3, 2);
        for l in 0..3 {
            g.add_edge(l, 0);
            g.add_edge(l, 1);
        }
        assert!(!has_left_saturating_matching(&g));
        let matched = max_matching(&g).iter().filter(|m| m.is_some()).count();
        assert_eq!(matched, 2);
    }

    #[test]
    fn isolated_left_vertex_blocks_saturation() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        assert!(!has_left_saturating_matching(&g));
    }

    #[test]
    fn empty_left_side_is_trivially_saturated() {
        let g = BipartiteGraph::new(0, 5);
        assert!(has_left_saturating_matching(&g));
    }

    #[test]
    fn matching_is_injective() {
        let mut g = BipartiteGraph::new(4, 4);
        for l in 0..4 {
            for r in 0..4 {
                g.add_edge(l, r);
            }
        }
        let m = max_matching(&g);
        let mut rights: Vec<_> = m.iter().map(|x| x.unwrap()).collect();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(rights.len(), 4);
    }

    #[test]
    fn long_augmenting_chain() {
        // A chain forcing repeated re-matching: l_i connects to r_i and
        // r_{i+1}, last left connects only to r_0. Perfect matching exists.
        let n = 6;
        let mut g = BipartiteGraph::new(n, n);
        for i in 0..n - 1 {
            g.add_edge(i, i);
            g.add_edge(i, i + 1);
        }
        g.add_edge(n - 1, 0);
        assert!(has_left_saturating_matching(&g));
    }
}
