//! Matching-order selection for the backtracking counter.
//!
//! GraphQL-style ordering: start from the query vertex with the smallest
//! candidate set, then repeatedly append the *connected* unordered vertex
//! with the smallest candidate set. Connectivity keeps every extension
//! constrained by at least one already-matched neighbor, which is what makes
//! backtracking tractable; candidate-size greediness fails fast.

use crate::candidates::CandidateSets;
use neursc_graph::types::VertexId;
use neursc_graph::Graph;

/// A matching order plus, for each position, the positions of
/// already-ordered query neighbors ("backward neighbors").
#[derive(Debug, Clone)]
pub struct MatchingOrder {
    /// `order[i]` = query vertex matched at depth `i`.
    pub order: Vec<VertexId>,
    /// `backward[i]` = depths `< i` whose query vertex is adjacent to
    /// `order[i]`.
    pub backward: Vec<Vec<usize>>,
}

/// Builds a matching order from candidate-set sizes. For a connected query
/// every non-root vertex has at least one backward neighbor; for a
/// disconnected query each component is started fresh (no backward
/// neighbors at its root).
pub fn build_order(q: &Graph, cs: &CandidateSets) -> MatchingOrder {
    let n = q.n_vertices();
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];

    while order.len() < n {
        // Candidates adjacent to the placed set, or — if none (new
        // component / first pick) — all unplaced vertices.
        let mut best: Option<VertexId> = None;
        let mut best_connected = false;
        for u in q.vertices() {
            if placed[u as usize] {
                continue;
            }
            let connected = q.neighbors(u).iter().any(|&w| placed[w as usize]);
            // Prefer connected vertices; tie-break by smaller candidate set,
            // then by id for determinism.
            let better = match best {
                None => true,
                Some(b) => {
                    if connected != best_connected {
                        connected
                    } else {
                        (cs.get(u).len(), u) < (cs.get(b).len(), b)
                    }
                }
            };
            if better {
                best = Some(u);
                best_connected = connected;
            }
        }
        let Some(u) = best else {
            unreachable!("each pass places exactly one unplaced vertex")
        };
        placed[u as usize] = true;
        order.push(u);
    }

    let pos: Vec<usize> = {
        let mut p = vec![0usize; n];
        for (i, &u) in order.iter().enumerate() {
            p[u as usize] = i;
        }
        p
    };
    let backward = order
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            let mut b: Vec<usize> = q
                .neighbors(u)
                .iter()
                .map(|&w| pos[w as usize])
                .filter(|&j| j < i)
                .collect();
            b.sort_unstable();
            b
        })
        .collect();
    MatchingOrder { order, backward }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::local_pruning;
    use crate::profile::{paper_data_graph, paper_query_graph};
    use neursc_graph::Graph;

    #[test]
    fn order_is_a_permutation() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs = local_pruning(&q, &g, 1);
        let mo = build_order(&q, &cs);
        let mut sorted = mo.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn order_starts_at_smallest_candidate_set() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs = local_pruning(&q, &g, 1);
        let mo = build_order(&q, &cs);
        assert_eq!(mo.order[0], 0); // CS(u1) = {v1}, the unique minimum
    }

    #[test]
    fn connected_query_has_backward_neighbors_everywhere() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs = local_pruning(&q, &g, 1);
        let mo = build_order(&q, &cs);
        for i in 1..mo.order.len() {
            assert!(
                !mo.backward[i].is_empty(),
                "position {i} (query vertex {}) has no backward neighbor",
                mo.order[i]
            );
        }
    }

    #[test]
    fn backward_neighbors_match_adjacency() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs = local_pruning(&q, &g, 1);
        let mo = build_order(&q, &cs);
        for i in 0..mo.order.len() {
            for &j in &mo.backward[i] {
                assert!(j < i);
                assert!(q.has_edge(mo.order[i], mo.order[j]));
            }
            // completeness: every earlier adjacent vertex is listed
            let listed: std::collections::HashSet<_> = mo.backward[i].iter().copied().collect();
            for j in 0..i {
                if q.has_edge(mo.order[i], mo.order[j]) {
                    assert!(listed.contains(&j));
                }
            }
        }
    }

    #[test]
    fn disconnected_query_is_still_fully_ordered() {
        let q = Graph::from_edges(4, &[0, 0, 1, 1], &[(0, 1), (2, 3)]).unwrap();
        let cs = CandidateSets {
            sets: vec![vec![0], vec![0, 1], vec![2], vec![3, 4]],
        };
        let mo = build_order(&q, &cs);
        assert_eq!(mo.order.len(), 4);
        let roots = mo.backward.iter().filter(|b| b.is_empty()).count();
        assert_eq!(roots, 2); // one root per component
    }
}
