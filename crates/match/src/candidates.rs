//! Candidate vertex sets `CS(u)` (Definition 2) and local pruning.
//!
//! A *complete candidate vertex set* must contain every data vertex that
//! participates in any match — filtering may over-approximate but never
//! under-approximate. Local pruning admits `v` into `CS(u)` iff
//! `f_l(v) = f_l(u)`, `d(v) ≥ d(u)`, and profile(u) ⊑ profile(v).

use crate::profile::{all_profiles, subsumes};
use neursc_graph::types::VertexId;
use neursc_graph::Graph;

/// Candidate sets for every query vertex: `sets[u]` is the sorted `CS(u)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSets {
    /// Per-query-vertex sorted candidate lists.
    pub sets: Vec<Vec<VertexId>>,
}

impl CandidateSets {
    /// `CS(u)` for query vertex `u`.
    pub fn get(&self, u: VertexId) -> &[VertexId] {
        &self.sets[u as usize]
    }

    /// Membership test (`O(log |CS(u)|)`).
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.sets[u as usize].binary_search(&v).is_ok()
    }

    /// `CS(q) = ∪_u CS(u)`, sorted and deduplicated.
    pub fn union(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.union_into(&mut out);
        out
    }

    /// [`CandidateSets::union`] into a caller-owned buffer, so repeated
    /// unions (one per query in a batch) reuse one allocation.
    pub fn union_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.reserve(self.total_size());
        out.extend(self.sets.iter().flatten().copied());
        out.sort_unstable();
        out.dedup();
    }

    /// Σ_u |CS(u)| — the filtering-power metric of \[89\].
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether any query vertex has an empty candidate set (then the count
    /// is exactly 0 and NeurSC short-circuits — Algorithm 1).
    pub fn any_empty(&self) -> bool {
        self.sets.iter().any(|s| s.is_empty())
    }

    /// NeurSC's early-termination test (paper §4): estimation can stop when
    /// some `CS(u)` is empty or `|∪ CS(u)| < |V(q)|`.
    pub fn is_trivially_zero(&self) -> bool {
        self.any_empty() || self.union().len() < self.sets.len()
    }
}

/// Local pruning: builds `CS(u)` for all query vertices from label, degree
/// and radius-`r` profile tests. `O(|V(q)|·|V(G)|)` pair tests but each is
/// cheap and label-partitioned.
pub fn local_pruning(q: &Graph, g: &Graph, r: u32) -> CandidateSets {
    local_pruning_with(q, g, r, &all_profiles(g, r))
}

/// [`local_pruning`] with the data-graph profiles supplied by the caller —
/// the entry point used with a [`crate::cache::ProfileCache`], which makes
/// the `all_profiles(G, r)` term (the only `O(|G|)` precomputation here)
/// amortizable across a query batch. Query profiles are still computed per
/// call; they are `O(|q|)` and query-specific.
pub fn local_pruning_with(
    q: &Graph,
    g: &Graph,
    r: u32,
    g_profiles: &[crate::profile::Profile],
) -> CandidateSets {
    let mut meter = crate::budget::FilterBudget::UNBOUNDED.meter();
    match local_pruning_metered(q, g, r, g_profiles, &mut meter) {
        Ok(cs) => cs,
        Err(_) => unreachable!("unbounded meter cannot trip"),
    }
}

/// [`local_pruning_with`] charging one step per candidate-pair test to the
/// supplied meter. Exhaustion aborts with an error: a partially-built set
/// is not *complete* (Definition 2), so no sound estimate can follow.
pub fn local_pruning_metered(
    q: &Graph,
    g: &Graph,
    r: u32,
    g_profiles: &[crate::profile::Profile],
    meter: &mut crate::budget::WorkMeter,
) -> Result<CandidateSets, crate::budget::FilterError> {
    use crate::budget::{FilterError, FilterPhase};
    debug_assert_eq!(g_profiles.len(), g.n_vertices());
    let q_profiles = all_profiles(q, r);

    // Partition data vertices by label once.
    let n_labels = g.n_labels().max(q.n_labels());
    let mut by_label: Vec<Vec<VertexId>> = vec![Vec::new(); n_labels];
    for v in g.vertices() {
        by_label[g.label(v) as usize].push(v);
    }

    let mut sets = Vec::with_capacity(q.n_vertices());
    for u in q.vertices() {
        let lu = q.label(u) as usize;
        if lu >= by_label.len() {
            sets.push(Vec::new());
            continue;
        }
        let mut set = Vec::new();
        for &v in &by_label[lu] {
            meter.charge(1).map_err(|_| FilterError::BudgetExhausted {
                phase: FilterPhase::LocalPruning,
                spent: meter.spent(),
            })?;
            if g.degree(v) >= q.degree(u)
                && subsumes(&g_profiles[v as usize], &q_profiles[u as usize])
            {
                set.push(v);
            }
        }
        sets.push(set);
    }
    Ok(CandidateSets { sets })
}

/// [`local_pruning_with`] restricted to the data vertices accepted by
/// `keep` — the per-partition core filter of the out-of-core store's deep
/// (radius ≥ 2) path. Admission predicate and per-set ascending-id ordering
/// are identical to the unscoped pass, so concatenating the results of
/// `keep`-disjoint scopes that cover ascending ranges of `V(G)` reproduces
/// `local_pruning_with(q, g, r, g_profiles)` exactly. Work metering is the
/// caller's responsibility (the store pre-charges the whole-graph cost).
pub fn local_pruning_scoped(
    q: &Graph,
    g: &Graph,
    r: u32,
    g_profiles: &[crate::profile::Profile],
    keep: &dyn Fn(VertexId) -> bool,
) -> CandidateSets {
    debug_assert_eq!(g_profiles.len(), g.n_vertices());
    let q_profiles = all_profiles(q, r);
    let n_labels = g.n_labels().max(q.n_labels());
    let mut by_label: Vec<Vec<VertexId>> = vec![Vec::new(); n_labels];
    for v in g.vertices() {
        if keep(v) {
            by_label[g.label(v) as usize].push(v);
        }
    }
    let mut sets = Vec::with_capacity(q.n_vertices());
    for u in q.vertices() {
        let lu = q.label(u) as usize;
        if lu >= by_label.len() {
            sets.push(Vec::new());
            continue;
        }
        let mut set = Vec::new();
        for &v in &by_label[lu] {
            if g.degree(v) >= q.degree(u)
                && subsumes(&g_profiles[v as usize], &q_profiles[u as usize])
            {
                set.push(v);
            }
        }
        sets.push(set);
    }
    CandidateSets { sets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{paper_data_graph, paper_query_graph};

    #[test]
    fn paper_example_local_pruning() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs = local_pruning(&q, &g, 1);
        assert_eq!(cs.get(0), &[0]); // CS(u1) = {v1}
        assert_eq!(cs.get(1), &[1, 2, 3]); // CS(u2) = {v2, v3, v4}
        assert_eq!(cs.get(2), &[4, 5, 6, 7, 8]); // C vertices with a D neighbor
        assert_eq!(cs.get(3), &[9, 10]); // CS(u4) = {v10, v11}
    }

    #[test]
    fn completeness_contains_known_match() {
        // The match {(u1,v1),(u2,v4),(u3,v5),(u4,v10)} must survive.
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs = local_pruning(&q, &g, 1);
        for (u, v) in [(0u32, 0u32), (1, 3), (2, 4), (3, 9)] {
            assert!(cs.contains(u, v), "candidate ({u},{v}) missing");
        }
    }

    #[test]
    fn union_and_sizes() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs = local_pruning(&q, &g, 1);
        assert_eq!(cs.total_size(), 1 + 3 + 5 + 2);
        assert_eq!(cs.union(), vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert!(!cs.any_empty());
        assert!(!cs.is_trivially_zero());
    }

    #[test]
    fn missing_label_empties_candidate_set() {
        let g = paper_data_graph();
        // Query with a label (7) absent from the data graph.
        let q = Graph::from_edges(2, &[0, 7], &[(0, 1)]).unwrap();
        let cs = local_pruning(&q, &g, 1);
        assert!(cs.get(1).is_empty());
        assert!(cs.any_empty());
        assert!(cs.is_trivially_zero());
    }

    #[test]
    fn degree_filter_applies() {
        // Star query: center needs degree ≥ 3.
        let g =
            Graph::from_edges(6, &[0, 1, 1, 1, 0, 1], &[(0, 1), (0, 2), (0, 3), (4, 5)]).unwrap();
        let q = Graph::from_edges(4, &[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let cs = local_pruning(&q, &g, 1);
        assert_eq!(cs.get(0), &[0]); // vertex 4 (label 0, degree 1) pruned
    }

    #[test]
    fn radius2_prunes_at_least_as_much_as_radius1() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let cs1 = local_pruning(&q, &g, 1);
        let cs2 = local_pruning(&q, &g, 2);
        for u in q.vertices() {
            for &v in cs2.get(u) {
                assert!(cs1.contains(u, v), "r=2 admitted ({u},{v}) that r=1 pruned");
            }
            assert!(cs2.get(u).len() <= cs1.get(u).len());
        }
    }

    #[test]
    fn scoped_pruning_over_disjoint_ranges_concatenates_to_unscoped() {
        let q = paper_query_graph();
        let g = paper_data_graph();
        let profiles = all_profiles(&g, 1);
        let whole = local_pruning(&q, &g, 1);
        for split in 0..=g.n_vertices() as VertexId {
            let lo = local_pruning_scoped(&q, &g, 1, &profiles, &|v| v < split);
            let hi = local_pruning_scoped(&q, &g, 1, &profiles, &|v| v >= split);
            for u in q.vertices() {
                let mut cat = lo.get(u).to_vec();
                cat.extend_from_slice(hi.get(u));
                assert_eq!(cat, whole.get(u), "split at {split}, query vertex {u}");
            }
        }
    }

    #[test]
    fn is_trivially_zero_when_union_too_small() {
        // Query larger than the number of distinct candidates available.
        let g = Graph::from_edges(3, &[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        let q = Graph::from_edges(4, &[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let cs = local_pruning(&q, &g, 1);
        assert!(cs.is_trivially_zero());
    }

    use neursc_graph::Graph;
}
