//! Resource budgets for candidate filtering.
//!
//! Mirrors [`crate::enumerate`]'s deterministic expansion budget: filtering
//! work is metered in *steps* (candidate-pair tests), so a step budget cuts
//! off pathological queries at a reproducible point regardless of machine
//! speed or thread count. An optional wall-clock deadline is also supported
//! for serving deployments; unlike steps it is inherently nondeterministic,
//! so it is off by default and documented as such (DESIGN.md, "Failure
//! semantics").

use std::fmt;
use std::time::Instant;

/// A budget for one filtering run: a deterministic step cap plus an optional
/// wall-clock deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterBudget {
    /// Maximum candidate-pair tests across local pruning and refinement.
    pub max_steps: u64,
    /// Hard wall-clock cutoff (checked every [`WorkMeter::DEADLINE_STRIDE`]
    /// steps to keep the meter cheap). `None` disables the check.
    pub deadline: Option<Instant>,
}

impl FilterBudget {
    /// No limits — the behaviour of the unbudgeted entry points.
    pub const UNBOUNDED: FilterBudget = FilterBudget {
        max_steps: u64::MAX,
        deadline: None,
    };

    /// A deterministic step-only budget.
    pub fn steps(max_steps: u64) -> Self {
        FilterBudget {
            max_steps,
            deadline: None,
        }
    }

    /// Adds a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Starts metering against this budget.
    pub fn meter(&self) -> WorkMeter {
        WorkMeter {
            spent: 0,
            next_deadline_check: WorkMeter::DEADLINE_STRIDE,
            budget: *self,
        }
    }
}

impl Default for FilterBudget {
    fn default() -> Self {
        FilterBudget::UNBOUNDED
    }
}

/// Step counter charged by the filtering phases.
#[derive(Debug, Clone)]
pub struct WorkMeter {
    spent: u64,
    next_deadline_check: u64,
    budget: FilterBudget,
}

impl WorkMeter {
    /// How many steps pass between wall-clock checks — `Instant::now()` per
    /// pair test would dominate the work being metered.
    pub const DEADLINE_STRIDE: u64 = 1024;

    /// Records `steps` units of work; errors once the budget is exceeded.
    #[inline]
    pub fn charge(&mut self, steps: u64) -> Result<(), BudgetExceeded> {
        self.spent = self.spent.saturating_add(steps);
        if self.spent > self.budget.max_steps {
            return Err(BudgetExceeded);
        }
        if let Some(d) = self.budget.deadline {
            if self.spent >= self.next_deadline_check {
                self.next_deadline_check = self.spent.saturating_add(Self::DEADLINE_STRIDE);
                if Instant::now() >= d {
                    return Err(BudgetExceeded);
                }
            }
        }
        Ok(())
    }

    /// Steps charged so far.
    #[inline]
    pub fn spent(&self) -> u64 {
        self.spent
    }
}

/// Marker returned by [`WorkMeter::charge`] when the budget is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded;

/// Which filtering phase ran out of budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterPhase {
    /// Label/degree/profile pruning — exhaustion here is fatal for the
    /// query, because partially-built candidate sets are not complete
    /// (Definition 2) and any estimate from them would be unsound.
    LocalPruning,
    /// Semi-perfect-matching refinement — exhaustion here degrades
    /// gracefully: the pre-refinement sets are already complete, refinement
    /// only tightens them.
    Refinement,
}

impl fmt::Display for FilterPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterPhase::LocalPruning => write!(f, "local pruning"),
            FilterPhase::Refinement => write!(f, "global refinement"),
        }
    }
}

/// Typed error for budgeted filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// The step or wall-clock budget ran out in a phase that cannot degrade.
    BudgetExhausted {
        /// Phase that hit the limit.
        phase: FilterPhase,
        /// Steps spent when the limit was hit.
        spent: u64,
    },
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::BudgetExhausted { phase, spent } => write!(
                f,
                "filtering budget exhausted during {phase} after {spent} steps"
            ),
        }
    }
}

impl std::error::Error for FilterError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_meter_never_trips() {
        let mut m = FilterBudget::UNBOUNDED.meter();
        for _ in 0..10_000 {
            assert!(m.charge(1_000_000).is_ok());
        }
    }

    #[test]
    fn step_budget_trips_deterministically() {
        let mut m = FilterBudget::steps(10).meter();
        for _ in 0..10 {
            assert!(m.charge(1).is_ok());
        }
        assert_eq!(m.charge(1), Err(BudgetExceeded));
        assert_eq!(m.spent(), 11);
    }

    #[test]
    fn elapsed_deadline_trips_at_the_stride() {
        let past = Instant::now() - Duration::from_secs(1);
        let mut m = FilterBudget::UNBOUNDED.with_deadline(past).meter();
        // Below the stride the clock is not consulted.
        assert!(m.charge(WorkMeter::DEADLINE_STRIDE - 1).is_ok());
        assert_eq!(m.charge(1), Err(BudgetExceeded));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let later = Instant::now() + Duration::from_secs(3600);
        let mut m = FilterBudget::steps(1 << 20).with_deadline(later).meter();
        assert!(m.charge(WorkMeter::DEADLINE_STRIDE * 4).is_ok());
    }

    #[test]
    fn error_display_names_the_phase() {
        let e = FilterError::BudgetExhausted {
            phase: FilterPhase::LocalPruning,
            spent: 42,
        };
        let msg = e.to_string();
        assert!(msg.contains("local pruning"), "{msg}");
        assert!(msg.contains("42"), "{msg}");
    }
}
