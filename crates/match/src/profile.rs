//! r-hop label profiles (GraphQL local pruning, paper §4(1)).
//!
//! The *profile* of a vertex `u` within radius `r` is the lexicographically
//! ordered multiset of labels of `u` and of every vertex within `r` hops.
//! Local pruning keeps `v ∈ CS(u)` iff the profile of `u` is a sub-multiset
//! (equivalently: a subsequence of the sorted sequence) of the profile of
//! `v` — a necessary condition for `(u, v)` to appear in any match, because
//! a subgraph-isomorphism embedding maps the r-ball of `u` injectively and
//! label-preservingly into the r-ball of `v`.

use neursc_graph::traversal::khop_ball;
use neursc_graph::types::{Label, VertexId};
use neursc_graph::Graph;

/// The sorted label multiset of a vertex's r-ball.
pub type Profile = Vec<Label>;

/// Computes the radius-`r` profile of one vertex.
pub fn vertex_profile(g: &Graph, v: VertexId, r: u32) -> Profile {
    let mut labels: Vec<Label> = khop_ball(g, v, r).into_iter().map(|u| g.label(u)).collect();
    labels.sort_unstable();
    labels
}

/// Computes the radius-1 profiles of **all** vertices in one pass — the
/// common case (`r = 1` is GraphQL's default and what NeurSC uses), done
/// without per-vertex BFS: `O(n + m)` label gathering plus sorting.
pub fn all_profiles_r1(g: &Graph) -> Vec<Profile> {
    g.vertices()
        .map(|v| {
            let mut labels: Vec<Label> = Vec::with_capacity(g.degree(v) + 1);
            profile_r1_into(
                g.label(v),
                g.neighbors(v).iter().map(|&u| g.label(u)),
                &mut labels,
            );
            labels
        })
        .collect()
}

/// Fills `out` with the radius-1 profile of a vertex given its own label
/// and its neighbors' labels — the row-streamed analogue of
/// [`all_profiles_r1`], shared with the out-of-core store so the resident
/// and streamed filtering paths use one profile definition.
pub fn profile_r1_into(
    own: Label,
    neighbor_labels: impl IntoIterator<Item = Label>,
    out: &mut Vec<Label>,
) {
    out.clear();
    out.push(own);
    out.extend(neighbor_labels);
    out.sort_unstable();
}

/// Computes all radius-`r` profiles. `r = 1` uses the one-pass gather;
/// `r > 1` runs a BFS per vertex but reuses one queue and one stamp-based
/// visited array across all of them — per-vertex BFS allocation was the
/// dominant cost of this path on large data graphs.
pub fn all_profiles(g: &Graph, r: u32) -> Vec<Profile> {
    if r == 1 {
        return all_profiles_r1(g);
    }
    let n = g.n_vertices();
    // `visited[u] == stamp` ⇔ u reached in the BFS from vertex `stamp`.
    let mut visited: Vec<VertexId> = vec![VertexId::MAX; n];
    let mut queue: Vec<VertexId> = Vec::new();
    g.vertices()
        .map(|v| {
            queue.clear();
            queue.push(v);
            visited[v as usize] = v;
            let mut head = 0;
            let mut frontier_end = queue.len();
            let mut depth = 0;
            while depth < r && head < queue.len() {
                while head < frontier_end {
                    let u = queue[head];
                    head += 1;
                    for &w in g.neighbors(u) {
                        if visited[w as usize] != v {
                            visited[w as usize] = v;
                            queue.push(w);
                        }
                    }
                }
                frontier_end = queue.len();
                depth += 1;
            }
            let mut labels: Vec<Label> = queue.iter().map(|&u| g.label(u)).collect();
            labels.sort_unstable();
            labels
        })
        .collect()
}

/// Multiset-inclusion test on two sorted label sequences: does `needle`
/// subsume into `haystack`? Linear two-pointer merge.
pub fn subsumes(haystack: &[Label], needle: &[Label]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    let mut i = 0; // haystack cursor
    for &x in needle {
        // advance haystack until we find x
        while i < haystack.len() && haystack[i] < x {
            i += 1;
        }
        if i >= haystack.len() || haystack[i] != x {
            return false;
        }
        i += 1;
    }
    true
}

/// Test fixture: a data graph reproducing the paper's Figure 1b / Example 1
/// semantics. Labels: `A = 0, B = 1, C = 2, D = 3`; vertex `v{i}` of the
/// figure is id `i − 1`.
///
/// The graph is constructed so that, exactly as in Example 1, local pruning
/// yields `CS(u2) = {v2, v3, v4}` and global refinement shrinks it to
/// `{v4}`, the final candidate sets are `CS(u1) = {v1}`, `CS(u3) = {v5,
/// v6}`, `CS(u4) = {v10, v11}`, and the query has exactly **3** embeddings.
pub fn paper_data_graph() -> Graph {
    let labels = [0, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3];
    let edges = [
        (0, 1),  // v1-v2
        (0, 2),  // v1-v3
        (0, 3),  // v1-v4
        (1, 12), // v2-v13
        (2, 12), // v3-v13
        (3, 4),  // v4-v5
        (3, 5),  // v4-v6
        (3, 9),  // v4-v10
        (3, 10), // v4-v11
        (4, 9),  // v5-v10
        (4, 10), // v5-v11
        (5, 10), // v6-v11
        (6, 11), // v7-v12
        (7, 11), // v8-v12
        (8, 11), // v9-v12
    ];
    Graph::from_edges(13, &labels, &edges).unwrap_or_else(|_| unreachable!("static fixture"))
}

/// Test fixture: the Figure 1a query graph — `u1(A)−u2(B)`, `u2−u4(D)`,
/// `u3(C)−u4` (profiles match Example 1: profile(u2) = {A, B, D}).
pub fn paper_query_graph() -> Graph {
    Graph::from_edges(4, &[0, 1, 2, 3], &[(0, 1), (1, 3), (2, 3)])
        .unwrap_or_else(|_| unreachable!("static fixture"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_contains_self_and_neighbors() {
        let g = paper_data_graph();
        // v4 (id 3): label B, neighbors v1(A), v5(C), v6(C), v10(D), v11(D)
        let p = vertex_profile(&g, 3, 1);
        assert_eq!(p, vec![0, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn all_profiles_r1_matches_per_vertex() {
        let g = paper_data_graph();
        let all = all_profiles_r1(&g);
        for v in g.vertices() {
            assert_eq!(all[v as usize], vertex_profile(&g, v, 1));
        }
    }

    #[test]
    fn all_profiles_scratch_bfs_matches_per_vertex() {
        let g = paper_data_graph();
        for r in [2u32, 3, 4] {
            let all = all_profiles(&g, r);
            for v in g.vertices() {
                assert_eq!(all[v as usize], vertex_profile(&g, v, r), "r={r} v={v}");
            }
        }
    }

    #[test]
    fn radius2_profile_is_superset_of_radius1() {
        let g = paper_data_graph();
        for v in g.vertices() {
            let p1 = vertex_profile(&g, v, 1);
            let p2 = vertex_profile(&g, v, 2);
            assert!(subsumes(&p2, &p1));
        }
    }

    #[test]
    fn subsumes_multiset_semantics() {
        assert!(subsumes(&[0, 1, 1, 2], &[1, 2]));
        assert!(subsumes(&[0, 1, 1, 2], &[1, 1]));
        assert!(!subsumes(&[0, 1, 2], &[1, 1])); // multiplicity matters
        assert!(!subsumes(&[0, 1], &[3]));
        assert!(subsumes(&[5], &[]));
        assert!(!subsumes(&[], &[0]));
        assert!(subsumes(&[], &[]));
    }

    #[test]
    fn paper_example_profiles() {
        // Example 1: profile(u2) = {A, B, D}; the profiles of v2, v3 are
        // also {A, B, D} and v4's is {A, B, C, C, D, D}; all subsume u2's.
        let q = paper_query_graph();
        let g = paper_data_graph();
        let pu2 = vertex_profile(&q, 1, 1);
        assert_eq!(pu2, vec![0, 1, 3]);
        for data_v in [1u32, 2, 3] {
            assert!(subsumes(&vertex_profile(&g, data_v, 1), &pu2));
        }
        // v10 (D-labeled) must not subsume a B-rooted profile.
        assert!(!subsumes(&vertex_profile(&g, 9, 1), &pu2));
    }

    #[test]
    fn paper_example_u3_candidates_after_local_pruning() {
        // profile(u3) = {C, D}; every C vertex adjacent to a D vertex passes.
        let q = paper_query_graph();
        let g = paper_data_graph();
        let pu3 = vertex_profile(&q, 2, 1);
        assert_eq!(pu3, vec![2, 3]);
        let passing: Vec<u32> = g
            .vertices_with_label(2)
            .filter(|&v| subsumes(&vertex_profile(&g, v, 1), &pu3))
            .collect();
        // v5..v9 (ids 4..=8) all pass local pruning; refinement later
        // removes v7, v8, v9 (their D neighbor v12 is not in CS(u4)).
        assert_eq!(passing, vec![4, 5, 6, 7, 8]);
    }
}
