//! Property tests for the matching substrate.
//!
//! The load-bearing property is *candidate completeness* (Definition 2): no
//! filtering stage may drop a data vertex that participates in a true
//! match. We verify it by enumerating all embeddings by brute force on
//! random graphs and checking every matched pair survives the full
//! filter pipeline. We also cross-check the backtracking counter against
//! brute force.

use neursc_graph::generate::erdos_renyi;
use neursc_graph::sample::{sample_query, QuerySampler};
use neursc_graph::{Graph, GraphBuilder};
use neursc_match::candidates::local_pruning;
use neursc_match::enumerate::{brute_force_count, count_embeddings};
use neursc_match::filter::{filter_candidates, FilterConfig};
use proptest::prelude::*;
use rand::SeedableRng;

/// Enumerates all embeddings (query vertex → data vertex maps) brute-force.
fn all_embeddings(q: &Graph, g: &Graph) -> Vec<Vec<u32>> {
    fn rec(
        q: &Graph,
        g: &Graph,
        depth: usize,
        used: &mut [bool],
        map: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if depth == q.n_vertices() {
            out.push(map.clone());
            return;
        }
        let u = depth as u32;
        for v in g.vertices() {
            if used[v as usize] || g.label(v) != q.label(u) {
                continue;
            }
            let ok = q
                .neighbors(u)
                .iter()
                .filter(|&&w| (w as usize) < depth)
                .all(|&w| g.has_edge(v, map[w as usize]));
            if !ok {
                continue;
            }
            used[v as usize] = true;
            map.push(v);
            rec(q, g, depth + 1, used, map, out);
            map.pop();
            used[v as usize] = false;
        }
    }
    let mut out = Vec::new();
    rec(
        q,
        g,
        0,
        &mut vec![false; g.n_vertices()],
        &mut Vec::new(),
        &mut out,
    );
    out
}

fn arb_small_graph(n_min: usize, n_max: usize, n_labels: u32) -> impl Strategy<Value = Graph> {
    (n_min..=n_max).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0u32..n_labels, n);
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(2 * n));
        (labels, edges).prop_map(move |(labels, edges)| {
            let mut b = GraphBuilder::new(n);
            for (v, &l) in labels.iter().enumerate() {
                b.set_label(v as u32, l);
            }
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Definition 2 safety: every (u, v) pair used by any true embedding
    /// survives local pruning AND the full refined pipeline.
    #[test]
    fn filtering_never_drops_a_true_match(
        g in arb_small_graph(6, 14, 3),
        q in arb_small_graph(2, 4, 3),
    ) {
        let embeddings = all_embeddings(&q, &g);
        let local = local_pruning(&q, &g, 1);
        let full = filter_candidates(&q, &g, &FilterConfig { profile_radius: 1, refinement_rounds: 4 });
        for emb in &embeddings {
            for (u, &v) in emb.iter().enumerate() {
                prop_assert!(local.contains(u as u32, v),
                    "local pruning dropped true pair ({u},{v})");
                prop_assert!(full.contains(u as u32, v),
                    "refinement dropped true pair ({u},{v})");
            }
        }
    }

    /// The backtracking counter agrees with brute force.
    #[test]
    fn counter_matches_brute_force(
        g in arb_small_graph(5, 12, 3),
        q in arb_small_graph(1, 4, 3),
    ) {
        let fast = count_embeddings(&q, &g, 100_000_000).exact().unwrap();
        let slow = brute_force_count(&q, &g);
        prop_assert_eq!(fast, slow);
    }

    /// Filtering with a larger radius or more refinement can only shrink
    /// candidate sets (monotone pruning power).
    #[test]
    fn refinement_monotone(
        g in arb_small_graph(6, 14, 3),
        q in arb_small_graph(2, 4, 3),
    ) {
        let weak = filter_candidates(&q, &g, &FilterConfig { profile_radius: 1, refinement_rounds: 0 });
        let strong = filter_candidates(&q, &g, &FilterConfig { profile_radius: 1, refinement_rounds: 4 });
        for u in q.vertices() {
            for &v in strong.get(u) {
                prop_assert!(weak.contains(u, v));
            }
        }
    }
}

#[test]
fn sampled_queries_always_have_matches_and_counts_agree() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for seed in 0..8u64 {
        let g = erdos_renyi(25, 60, 3, seed);
        if let Some(q) = sample_query(&g, &QuerySampler::induced(5), &mut rng) {
            let fast = count_embeddings(&q, &g, 100_000_000).exact().unwrap();
            assert!(fast >= 1, "induced sampled query must embed at least once");
            assert_eq!(fast, brute_force_count(&q, &g), "seed {seed}");
        }
    }
}

#[test]
fn triangle_embeddings_are_six_times_motif_occurrences() {
    // Cross-oracle check: the backtracking counter on the unlabeled
    // triangle must equal 6 × the closed-form triangle count.
    use neursc_graph::motifs::triangle_count;
    for seed in 0..5u64 {
        let g = erdos_renyi(40, 160, 1, seed);
        let tri = Graph::from_edges(3, &[0; 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let embeddings = count_embeddings(&tri, &g, 1_000_000_000).exact().unwrap();
        assert_eq!(embeddings, 6 * triangle_count(&g), "seed {seed}");
    }
}
