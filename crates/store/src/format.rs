//! The `NSCS` binary graph format: a packed, checksummed CSR image.
//!
//! Little-endian layout (`HEADER_LEN` = 40 bytes of fixed prefix):
//!
//! | bytes          | field                                        |
//! |----------------|----------------------------------------------|
//! | `[0..4)`       | magic `"NSCS"`                               |
//! | `[4..8)`       | format version (`u32`, currently 1)          |
//! | `[8..16)`      | FNV-1a-64 checksum of bytes `[16..end)`      |
//! | `[16..24)`     | vertex count `n` (`u64`)                     |
//! | `[24..32)`     | undirected edge count `m` (`u64`)            |
//! | `[32..36)`     | label count (`u32`)                          |
//! | `[36..40)`     | maximum degree (`u32`)                       |
//! | next `4n`      | vertex labels (`u32` each)                   |
//! | next `8(n+1)`  | CSR row offsets (`u64` each) — doubles as the|
//! |                | degree index: `deg(v) = off[v+1] − off[v]`   |
//! | next `8m`      | neighbor ids (`u32` each, `2m` entries)      |
//!
//! The checksum covers everything after itself (counts included), so any
//! single bit flip in the body fails verification; flips in the first 16
//! bytes fail the magic/version/checksum-field comparisons; truncation at
//! any byte fails the length equation before the checksum is even computed.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use neursc_graph::Graph;

use crate::error::StoreError;

/// File magic, first four bytes of every store.
pub const MAGIC: [u8; 4] = *b"NSCS";
/// Current format version.
pub const VERSION: u32 = 1;
/// Length of the fixed-size prefix (magic, version, checksum, counts).
pub const HEADER_LEN: usize = 40;

/// Incremental FNV-1a 64-bit hasher, usable over streamed file chunks.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Folds `bytes` into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a-64 of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// The decoded fixed header of a store image, with section geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Vertex count `n`.
    pub n_vertices: usize,
    /// Undirected edge count `m` (the adjacency holds `2m` entries).
    pub n_edges: usize,
    /// Declared label count.
    pub n_labels: usize,
    /// Declared maximum degree.
    pub max_degree: usize,
    /// Checksum stored in the header.
    pub checksum: u64,
}

impl Layout {
    /// Byte offset of the label array.
    pub fn labels_off(&self) -> usize {
        HEADER_LEN
    }

    /// Byte offset of the row-offset array.
    pub fn offsets_off(&self) -> usize {
        HEADER_LEN + 4 * self.n_vertices
    }

    /// Byte offset of the neighbor array.
    pub fn neighbors_off(&self) -> usize {
        self.offsets_off() + 8 * (self.n_vertices + 1)
    }

    /// Total image length implied by the counts.
    pub fn total_len(&self) -> usize {
        self.neighbors_off() + 8 * self.n_edges
    }
}

fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// Total image length implied by header counts, with overflow checking
/// (an adversarial header must not wrap the length equation into passing).
fn expected_len(n: u64, m: u64) -> Option<u64> {
    let labels = n.checked_mul(4)?;
    let offsets = n.checked_add(1)?.checked_mul(8)?;
    let neighbors = m.checked_mul(8)?;
    (HEADER_LEN as u64)
        .checked_add(labels)?
        .checked_add(offsets)?
        .checked_add(neighbors)
}

/// Parses and validates the fixed header against the actual file length.
/// `prefix` must hold at least the first [`HEADER_LEN`] bytes (or be the
/// whole file, if shorter). Fails with [`StoreError::Corrupt`] on bad
/// magic, version skew, or a length that contradicts the counts.
pub fn parse_header(
    prefix: &[u8],
    file_len: u64,
    path: Option<&Path>,
) -> Result<Layout, StoreError> {
    let corrupt = |detail: String| StoreError::corrupt(path.map(Path::to_path_buf), detail);
    if prefix.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "file is {file_len} bytes, shorter than the {HEADER_LEN}-byte header"
        )));
    }
    if prefix[0..4] != MAGIC {
        return Err(corrupt(format!(
            "bad magic {:02x?} (expected {:02x?})",
            &prefix[0..4],
            MAGIC
        )));
    }
    let version = le_u32(&prefix[4..8]);
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} (expected {VERSION})"
        )));
    }
    let checksum = le_u64(&prefix[8..16]);
    let n = le_u64(&prefix[16..24]);
    let m = le_u64(&prefix[24..32]);
    let n_labels = le_u32(&prefix[32..36]);
    let max_degree = le_u32(&prefix[36..40]);
    let expected = expected_len(n, m)
        .ok_or_else(|| corrupt(format!("header counts overflow (n={n}, m={m})")))?;
    if file_len != expected {
        return Err(corrupt(format!(
            "file is {file_len} bytes but counts (n={n}, m={m}) imply {expected}"
        )));
    }
    let oversize = |what: &str| corrupt(format!("{what} exceeds addressable memory"));
    Ok(Layout {
        n_vertices: usize::try_from(n).map_err(|_| oversize("vertex count"))?,
        n_edges: usize::try_from(m).map_err(|_| oversize("edge count"))?,
        n_labels: n_labels as usize,
        max_degree: max_degree as usize,
        checksum,
    })
}

/// Decodes a little-endian `u32` array section.
pub(crate) fn decode_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(le_u32).collect()
}

/// Decodes a little-endian `u64` array section.
pub(crate) fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes.chunks_exact(8).map(le_u64).collect()
}

/// Serializes a graph into a complete, checksummed `NSCS` image.
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let n = g.n_vertices();
    let m = g.n_edges();
    let lay = Layout {
        n_vertices: n,
        n_edges: m,
        n_labels: g.n_labels(),
        max_degree: g.max_degree(),
        checksum: 0,
    };
    let mut out = Vec::with_capacity(lay.total_len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    out.extend_from_slice(&(g.n_labels() as u32).to_le_bytes());
    out.extend_from_slice(&(g.max_degree() as u32).to_le_bytes());
    for v in g.vertices() {
        out.extend_from_slice(&g.label(v).to_le_bytes());
    }
    let mut acc = 0u64;
    out.extend_from_slice(&acc.to_le_bytes());
    for v in g.vertices() {
        acc += g.degree(v) as u64;
        out.extend_from_slice(&acc.to_le_bytes());
    }
    for v in g.vertices() {
        for &w in g.neighbors(v) {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    let ck = fnv1a64(&out[16..]);
    out[8..16].copy_from_slice(&ck.to_le_bytes());
    out
}

/// Packs a graph to `path` (write-to-sibling then rename, so a crash
/// mid-write never leaves a half-written store under the final name).
/// Returns the number of bytes written.
pub fn pack_graph(g: &Graph, path: impl AsRef<Path>) -> Result<u64, StoreError> {
    let path = path.as_ref();
    let bytes = encode_graph(g);
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let result = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    result.map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        StoreError::io_at(path, e)
    })?;
    Ok(bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neursc_graph::Graph;

    fn sample() -> Graph {
        Graph::from_edges(4, &[0, 1, 1, 2], &[(0, 1), (0, 2), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"fo");
        h.update(b"obar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn encode_then_parse_header_roundtrips() {
        let g = sample();
        let bytes = encode_graph(&g);
        let lay = parse_header(&bytes, bytes.len() as u64, None).unwrap();
        assert_eq!(lay.n_vertices, 4);
        assert_eq!(lay.n_edges, 4);
        assert_eq!(lay.n_labels, 3);
        assert_eq!(lay.max_degree, 3);
        assert_eq!(lay.total_len(), bytes.len());
        assert_eq!(lay.checksum, fnv1a64(&bytes[16..]));
    }

    #[test]
    fn header_rejects_bad_magic_version_and_length() {
        let bytes = encode_graph(&sample());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(parse_header(&bad, bad.len() as u64, None)
            .unwrap_err()
            .is_corruption());
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(parse_header(&bad, bad.len() as u64, None)
            .unwrap_err()
            .is_corruption());
        // Declared length no longer matches the file.
        assert!(parse_header(&bytes, bytes.len() as u64 - 1, None)
            .unwrap_err()
            .is_corruption());
        assert!(parse_header(&bytes[..10], 10, None)
            .unwrap_err()
            .is_corruption());
    }

    #[test]
    fn empty_graph_is_representable() {
        let g = Graph::from_edges(0, &[], &[]).unwrap();
        let bytes = encode_graph(&g);
        let lay = parse_header(&bytes, bytes.len() as u64, None).unwrap();
        assert_eq!(lay.n_vertices, 0);
        assert_eq!(lay.total_len(), bytes.len());
    }
}
