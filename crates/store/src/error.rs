//! Typed failures of the binary graph store.
//!
//! Mirrors the failure taxonomy of the model-persistence layer (DESIGN.md,
//! "Failure semantics"): plain I/O problems are [`StoreError::Io`]; any
//! integrity violation — bad magic, version skew, length mismatch, checksum
//! mismatch, structurally invalid CSR content — is [`StoreError::Corrupt`],
//! raised at open time *before* any adjacency is handed out, so a damaged
//! store can never silently feed wrong neighborhoods into the pipeline.

use std::fmt;
use std::path::PathBuf;

/// Any failure surfaced by packing or opening a binary graph store.
#[derive(Debug)]
pub enum StoreError {
    /// Store-file I/O failed (missing file, permissions, short write).
    Io {
        /// The store file involved, when known (in-memory stores have none).
        path: Option<PathBuf>,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The store failed an integrity check — truncated, bit-flipped,
    /// version-skewed or structurally invalid. Raised before any adjacency
    /// is served.
    Corrupt {
        /// The store file involved, when known.
        path: Option<PathBuf>,
        /// What the integrity check saw.
        detail: String,
    },
}

impl StoreError {
    /// An I/O error tagged with the file it happened on.
    pub fn io_at(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        StoreError::Io {
            path: Some(path.into()),
            source,
        }
    }

    /// A corruption error tagged with the file it was detected in.
    pub fn corrupt(path: Option<PathBuf>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path,
            detail: detail.into(),
        }
    }

    /// Whether this is an integrity (corruption) failure.
    pub fn is_corruption(&self) -> bool {
        matches!(self, StoreError::Corrupt { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                path: Some(p),
                source,
            } => write!(f, "graph store i/o error on {}: {source}", p.display()),
            StoreError::Io { path: None, source } => {
                write!(f, "graph store i/o error: {source}")
            }
            StoreError::Corrupt {
                path: Some(p),
                detail,
            } => write!(f, "corrupt graph store {}: {detail}", p.display()),
            StoreError::Corrupt { path: None, detail } => {
                write!(f, "corrupt graph store: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_file() {
        let e = StoreError::io_at("/tmp/g.nscs", std::io::Error::other("gone"));
        assert!(e.to_string().contains("g.nscs"));
        let c = StoreError::corrupt(Some("/tmp/g.nscs".into()), "checksum mismatch");
        assert!(c.to_string().contains("checksum mismatch"));
        assert!(c.is_corruption() && !e.is_corruption());
    }

    #[test]
    fn io_error_chains_its_source() {
        use std::error::Error as _;
        let e = StoreError::io_at("/x", std::io::Error::other("root"));
        assert!(e.source().is_some());
        assert!(StoreError::corrupt(None, "x").source().is_none());
    }
}
