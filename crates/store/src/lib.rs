//! Out-of-core binary graph store for NeurSC.
//!
//! Three pieces, bottom to top:
//!
//! 1. [`format`] — the `NSCS` packed CSR image: versioned magic, FNV-1a-64
//!    checksum, `u32` labels and neighbor ids, `u64` row offsets that
//!    double as a degree index. [`format::pack_graph`] converts a parsed
//!    [`neursc_graph::Graph`] into a store file atomically.
//! 2. [`store::GraphStore`] — verified access to an image, either fully
//!    resident or *streamed*: adjacency chunks load on demand behind a
//!    bounded LRU, so filtering touches `O(core + cache)` memory instead of
//!    `O(m)`. Every open verifies magic, version, the length equation and
//!    the full checksum before any adjacency is handed out; corruption is
//!    a typed [`StoreError::Corrupt`].
//! 3. [`partition::PartitionPlan`] — deterministic contiguous edge-balanced
//!    cores. Per-core local pruning ([`store::GraphStore::local_pruning_core`])
//!    is bit-identical to the matching slice of whole-graph pruning, which
//!    is what lets partitioned estimation reproduce monolithic estimates
//!    exactly (see `neursc_core::partition`).

pub mod error;
pub mod format;
pub mod partition;
pub mod store;

pub use error::StoreError;
pub use format::{encode_graph, pack_graph};
pub use partition::PartitionPlan;
pub use store::{AccessMode, CacheStats, GraphStore, PartitionView, WorkingSet};
