//! [`GraphStore`]: resident or chunk-streamed access to a packed `NSCS`
//! graph image.
//!
//! Both modes keep the label array and the row-offset array (which doubles
//! as the degree index) resident — together `12n` bytes. The adjacency
//! (`8m` bytes, the dominant term on real graphs) is either fully resident
//! or streamed: row-aligned edge chunks are loaded on demand behind a small
//! LRU of `Arc`-pinned buffers, so a partitioned estimation pass over a
//! graph much larger than memory touches only the rows of its current core
//! plus a bounded cache.
//!
//! Integrity: [`GraphStore::open`] verifies magic, version, the length
//! equation and the full-image FNV-1a-64 checksum **before** any adjacency
//! is handed out — a truncated or bit-flipped store fails with
//! [`StoreError::Corrupt`] at open, never mid-query. Streamed chunks are
//! additionally structure-checked (sorted strict rows, in-range ids, no
//! self-loops) as they load, guarding against a crafted image with a valid
//! checksum. Cross-row symmetry is only enforced when a full [`Graph`] is
//! materialized via [`GraphStore::to_graph`].

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use neursc_graph::types::{Label, VertexId};
use neursc_graph::{Graph, GraphError};
use neursc_match::candidates::{local_pruning_scoped, CandidateSets};
use neursc_match::profile::{all_profiles, profile_r1_into, subsumes, Profile};

use crate::error::StoreError;
use crate::format::{self, Layout, HEADER_LEN};

/// How the adjacency section is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// The whole adjacency is decoded into memory at open.
    Resident,
    /// Adjacency chunks are loaded on demand behind an LRU.
    Streamed {
        /// Soft chunk size in adjacency entries (each chunk is the longest
        /// row-aligned run not exceeding this many entries; a single row
        /// larger than the bound gets its own chunk).
        chunk_edges: usize,
        /// Maximum number of chunks pinned in the cache at once.
        max_chunks: usize,
    },
}

impl AccessMode {
    /// A streamed mode with defaults sized for ~4 MiB chunks and a ~32 MiB
    /// cache ceiling.
    pub fn streamed_default() -> Self {
        AccessMode::Streamed {
            chunk_edges: 1 << 20,
            max_chunks: 8,
        }
    }
}

/// Where streamed chunk bytes come from.
enum ChunkSource {
    /// A store file on disk; reads seek under the lock.
    File(Mutex<File>),
    /// A complete in-memory image (tests, oracle harnesses).
    Bytes(Arc<Vec<u8>>),
}

/// LRU state for streamed chunks. `entries` is tiny (≤ `max_chunks`), so
/// linear scans beat any map.
struct CacheState {
    entries: Vec<(usize, Arc<Vec<VertexId>>, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

struct StreamedAdjacency {
    source: ChunkSource,
    /// Absolute byte offset of the neighbor section in the image.
    neighbors_off: u64,
    /// Row-aligned chunk boundaries: chunk `c` covers vertex rows
    /// `row_bounds[c]..row_bounds[c+1]`.
    row_bounds: Vec<usize>,
    cap: usize,
    cache: Mutex<CacheState>,
}

enum Adjacency {
    Resident(Vec<VertexId>),
    Streamed(StreamedAdjacency),
}

/// Hit/miss counters of the streamed chunk cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Row reads served from a pinned chunk.
    pub hits: u64,
    /// Row reads that had to load a chunk.
    pub misses: u64,
}

/// An induced subgraph materialized around a partition core: the closed
/// r-hop ball of the core, with a mapping back to global ids.
pub struct PartitionView {
    /// The induced subgraph on the ball, local ids `0..origin.len()`.
    pub graph: Graph,
    /// `origin[local] = global`, sorted ascending.
    pub origin: Vec<VertexId>,
}

impl PartitionView {
    /// Local id of a global vertex, if present in the view.
    pub fn local_of(&self, global: VertexId) -> Option<usize> {
        self.origin.binary_search(&global).ok()
    }
}

/// The working set of one query: the candidate union plus its one-hop halo,
/// with edges taken from union rows only (halo–halo edges are omitted —
/// downstream refinement, extraction and sampling never inspect them, and
/// omitting them keeps the working set proportional to the union size).
pub struct WorkingSet {
    /// Induced-on-union subgraph over union ∪ N(union), local ids.
    pub graph: Graph,
    /// `origin[local] = global`, sorted ascending.
    pub origin: Vec<VertexId>,
}

impl WorkingSet {
    /// Local id of a global vertex. Panics only if `global` is outside the
    /// working set, which for candidate localization cannot happen (every
    /// candidate is in the union by construction).
    pub fn local_of(&self, global: VertexId) -> Option<usize> {
        self.origin.binary_search(&global).ok()
    }

    /// Maps global candidate sets into working-set-local ids, preserving
    /// order (the mapping is monotone because `origin` is sorted).
    pub fn localize(&self, sets: &[Vec<VertexId>]) -> Result<CandidateSets, StoreError> {
        let mut local = Vec::with_capacity(sets.len());
        for set in sets {
            let mut s = Vec::with_capacity(set.len());
            for &v in set {
                let l = self.local_of(v).ok_or_else(|| {
                    StoreError::corrupt(
                        None,
                        format!("candidate {v} missing from its own working set"),
                    )
                })?;
                s.push(l as VertexId);
            }
            local.push(s);
        }
        Ok(CandidateSets { sets: local })
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A packed graph opened for querying — see the module docs for the
/// resident/streamed split and the integrity guarantees.
pub struct GraphStore {
    labels: Vec<Label>,
    /// `n + 1` cumulative degrees; `deg(v) = offsets[v+1] − offsets[v]`.
    offsets: Vec<u64>,
    n_labels: usize,
    max_degree: usize,
    n_edges: usize,
    /// Per-label vertex counts — the local-pruning work pre-charge table.
    label_freq: Vec<u64>,
    adjacency: Adjacency,
    path: Option<PathBuf>,
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphStore")
            .field("n_vertices", &self.n_vertices())
            .field("n_edges", &self.n_edges)
            .field("n_labels", &self.n_labels)
            .field("max_degree", &self.max_degree)
            .field("streamed", &self.is_streamed())
            .field("path", &self.path)
            .finish()
    }
}

impl GraphStore {
    /// Opens a store file, verifying integrity before returning.
    pub fn open(path: impl AsRef<Path>, mode: AccessMode) -> Result<GraphStore, StoreError> {
        let path = path.as_ref();
        match mode {
            AccessMode::Resident => {
                let bytes = std::fs::read(path).map_err(|e| StoreError::io_at(path, e))?;
                Self::from_image(bytes, mode, Some(path.to_path_buf()))
            }
            AccessMode::Streamed { .. } => {
                let mut f = File::open(path).map_err(|e| StoreError::io_at(path, e))?;
                let file_len = f.metadata().map_err(|e| StoreError::io_at(path, e))?.len();
                let mut prefix = vec![0u8; HEADER_LEN.min(file_len as usize)];
                f.read_exact(&mut prefix)
                    .map_err(|e| StoreError::io_at(path, e))?;
                let lay = format::parse_header(&prefix, file_len, Some(path))?;
                verify_file_checksum(&mut f, file_len, lay.checksum, path)?;
                // Decode the resident sections (labels + offsets) through a
                // fixed-size scratch buffer: a full-section byte buffer
                // would transiently double the section's memory, which is
                // exactly the peak the streamed mode exists to avoid.
                f.seek(SeekFrom::Start(HEADER_LEN as u64))
                    .map_err(|e| StoreError::io_at(path, e))?;
                let mut scratch = vec![0u8; 1 << 20];
                let labels = read_decoded(&mut f, &mut scratch, 4, lay.n_vertices, path, |b| {
                    format::decode_u32s(b)
                })?;
                let offsets =
                    read_decoded(&mut f, &mut scratch, 8, lay.n_vertices + 1, path, |b| {
                        format::decode_u64s(b)
                    })?;
                drop(scratch);
                Self::assemble(
                    lay,
                    labels,
                    offsets,
                    mode,
                    ChunkSource::File(Mutex::new(f)),
                    Some(path.to_path_buf()),
                )
            }
        }
    }

    /// Opens a complete in-memory image (tests, oracle harnesses) with the
    /// same verification as [`GraphStore::open`].
    pub fn open_bytes(bytes: Vec<u8>, mode: AccessMode) -> Result<GraphStore, StoreError> {
        Self::from_image(bytes, mode, None)
    }

    fn from_image(
        bytes: Vec<u8>,
        mode: AccessMode,
        path: Option<PathBuf>,
    ) -> Result<GraphStore, StoreError> {
        let lay = format::parse_header(&bytes, bytes.len() as u64, path.as_deref())?;
        if format::fnv1a64(&bytes[16..]) != lay.checksum {
            return Err(StoreError::corrupt(path, "checksum mismatch".to_string()));
        }
        let labels = format::decode_u32s(&bytes[lay.labels_off()..lay.offsets_off()]);
        let offsets = format::decode_u64s(&bytes[lay.offsets_off()..lay.neighbors_off()]);
        match mode {
            AccessMode::Resident => {
                let neighbors = format::decode_u32s(&bytes[lay.neighbors_off()..]);
                let store = Self::assemble_resident(lay, labels, offsets, neighbors, path)?;
                Ok(store)
            }
            AccessMode::Streamed { .. } => Self::assemble(
                lay,
                labels,
                offsets,
                mode,
                ChunkSource::Bytes(Arc::new(bytes)),
                path,
            ),
        }
    }

    fn assemble_resident(
        lay: Layout,
        labels: Vec<Label>,
        offsets: Vec<u64>,
        neighbors: Vec<VertexId>,
        path: Option<PathBuf>,
    ) -> Result<GraphStore, StoreError> {
        let store = Self::build_common(lay, labels, offsets, path)?;
        validate_rows(
            &neighbors,
            &store.offsets,
            0,
            store.labels.len(),
            store.path.as_deref(),
        )?;
        Ok(GraphStore {
            adjacency: Adjacency::Resident(neighbors),
            ..store
        })
    }

    fn assemble(
        lay: Layout,
        labels: Vec<Label>,
        offsets: Vec<u64>,
        mode: AccessMode,
        source: ChunkSource,
        path: Option<PathBuf>,
    ) -> Result<GraphStore, StoreError> {
        let store = Self::build_common(lay, labels, offsets, path)?;
        let AccessMode::Streamed {
            chunk_edges,
            max_chunks,
        } = mode
        else {
            return Err(StoreError::corrupt(
                store.path,
                "internal: assemble called with resident mode".to_string(),
            ));
        };
        let chunk_edges = chunk_edges.max(1) as u64;
        let cap = max_chunks.max(1);
        let n = store.labels.len();
        let mut row_bounds = vec![0usize];
        let mut start = 0usize;
        while start < n {
            let mut end = start + 1;
            while end < n && store.offsets[end + 1] - store.offsets[start] <= chunk_edges {
                end += 1;
            }
            row_bounds.push(end);
            start = end;
        }
        Ok(GraphStore {
            adjacency: Adjacency::Streamed(StreamedAdjacency {
                source,
                neighbors_off: lay.neighbors_off() as u64,
                row_bounds,
                cap,
                cache: Mutex::new(CacheState {
                    entries: Vec::new(),
                    tick: 0,
                    hits: 0,
                    misses: 0,
                }),
            }),
            ..store
        })
    }

    /// Validates and installs the always-resident sections; the adjacency
    /// placeholder is empty-resident and replaced by the caller.
    fn build_common(
        lay: Layout,
        labels: Vec<Label>,
        offsets: Vec<u64>,
        path: Option<PathBuf>,
    ) -> Result<GraphStore, StoreError> {
        let corrupt = |detail: String| StoreError::corrupt(path.clone(), detail);
        let n = lay.n_vertices;
        if offsets.first() != Some(&0) {
            return Err(corrupt("row offsets must start at 0".to_string()));
        }
        if let Some(w) = offsets.windows(2).find(|w| w[0] > w[1]) {
            return Err(corrupt(format!(
                "row offsets not monotone: {} before {}",
                w[0], w[1]
            )));
        }
        if offsets.last() != Some(&(2 * lay.n_edges as u64)) {
            return Err(corrupt(format!(
                "row offsets end at {:?} but the edge count implies {}",
                offsets.last(),
                2 * lay.n_edges
            )));
        }
        let mut label_freq = vec![0u64; lay.n_labels];
        for (v, &l) in labels.iter().enumerate() {
            if (l as usize) >= lay.n_labels {
                return Err(corrupt(format!(
                    "vertex {v} has label {l}, outside the declared {} labels",
                    lay.n_labels
                )));
            }
            label_freq[l as usize] += 1;
        }
        let actual_max = offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        if actual_max != lay.max_degree {
            return Err(corrupt(format!(
                "declared max degree {} but rows imply {actual_max}",
                lay.max_degree
            )));
        }
        debug_assert_eq!(labels.len(), n);
        Ok(GraphStore {
            labels,
            offsets,
            n_labels: lay.n_labels,
            max_degree: lay.max_degree,
            n_edges: lay.n_edges,
            label_freq,
            adjacency: Adjacency::Resident(Vec::new()),
            path,
        })
    }

    /// Vertex count.
    pub fn n_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Undirected edge count.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Declared label count.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// The label of vertex `v`.
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// The degree of vertex `v`, straight from the offset (degree) index —
    /// no adjacency access.
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Cumulative degree up to (excluding) vertex `v` — `offsets[v]`, valid
    /// for `v ∈ 0..=n`. The edge-balance metric of the partitioner.
    pub fn cumulative_degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// How many data vertices carry label `l` (0 for out-of-range labels).
    pub fn label_frequency(&self, l: Label) -> u64 {
        self.label_freq.get(l as usize).copied().unwrap_or(0)
    }

    /// The exact number of work-meter steps whole-graph local pruning
    /// charges for query `q` on this graph: one step per (query vertex,
    /// same-label data vertex) pair. Partitioned filtering pre-charges this
    /// so budget semantics are bit-identical to the monolithic path.
    pub fn local_pruning_work(&self, q: &Graph) -> u64 {
        q.vertices().map(|u| self.label_frequency(q.label(u))).sum()
    }

    /// Whether the adjacency is chunk-streamed.
    pub fn is_streamed(&self) -> bool {
        matches!(self.adjacency, Adjacency::Streamed(_))
    }

    /// The store file, if this store was opened from one.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Chunk-cache counters (zero for resident stores).
    pub fn cache_stats(&self) -> CacheStats {
        match &self.adjacency {
            Adjacency::Resident(_) => CacheStats::default(),
            Adjacency::Streamed(s) => {
                let c = lock(&s.cache);
                CacheStats {
                    hits: c.hits,
                    misses: c.misses,
                }
            }
        }
    }

    /// Appends the sorted neighbor list of `v` to `out`.
    pub fn copy_row(&self, v: VertexId, out: &mut Vec<VertexId>) -> Result<(), StoreError> {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        match &self.adjacency {
            Adjacency::Resident(neighbors) => {
                out.extend_from_slice(&neighbors[lo..hi]);
                Ok(())
            }
            Adjacency::Streamed(s) => {
                let (chunk, base) = self.load_chunk_for_row(s, v as usize)?;
                out.extend_from_slice(&chunk[lo - base..hi - base]);
                Ok(())
            }
        }
    }

    /// Loads (or fetches from cache) the chunk containing vertex row `row`.
    /// Returns the chunk and the adjacency-entry index of its first entry.
    fn load_chunk_for_row(
        &self,
        s: &StreamedAdjacency,
        row: usize,
    ) -> Result<(Arc<Vec<VertexId>>, usize), StoreError> {
        let c = s.row_bounds.partition_point(|&b| b <= row) - 1;
        let r0 = s.row_bounds[c];
        let r1 = s.row_bounds[c + 1];
        let base = self.offsets[r0] as usize;
        let end = self.offsets[r1] as usize;
        let mut cache = lock(&s.cache);
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(e) = cache.entries.iter_mut().find(|e| e.0 == c) {
            e.2 = tick;
            let chunk = Arc::clone(&e.1);
            cache.hits += 1;
            return Ok((chunk, base));
        }
        cache.misses += 1;
        let byte_lo = s.neighbors_off + 4 * base as u64;
        let byte_len = 4 * (end - base);
        let mut buf = vec![0u8; byte_len];
        match &s.source {
            ChunkSource::File(f) => {
                let mut f = lock(f);
                f.seek(SeekFrom::Start(byte_lo))
                    .and_then(|_| f.read_exact(&mut buf))
                    .map_err(|e| StoreError::Io {
                        path: self.path.clone(),
                        source: e,
                    })?;
            }
            ChunkSource::Bytes(bytes) => {
                buf.copy_from_slice(&bytes[byte_lo as usize..byte_lo as usize + byte_len]);
            }
        }
        let decoded = format::decode_u32s(&buf);
        // Structure-check the chunk's rows before serving any of them.
        let chunk_offsets: Vec<u64> = self.offsets[r0..=r1]
            .iter()
            .map(|&o| o - base as u64)
            .collect();
        validate_rows(
            &decoded,
            &chunk_offsets,
            r0,
            self.labels.len(),
            self.path.as_deref(),
        )?;
        let arc = Arc::new(decoded);
        if cache.entries.len() >= s.cap {
            if let Some((idx, _)) = cache.entries.iter().enumerate().min_by_key(|(_, e)| e.2) {
                cache.entries.swap_remove(idx);
            }
        }
        cache.entries.push((c, Arc::clone(&arc), tick));
        Ok((arc, base))
    }

    /// Materializes the full graph (symmetry-validated). Resident-scale
    /// memory — intended for moderate graphs and test oracles.
    pub fn to_graph(&self) -> Result<Graph, StoreError> {
        let n = self.n_vertices();
        let mut neighbors: Vec<VertexId> = Vec::with_capacity(2 * self.n_edges);
        for v in 0..n {
            self.copy_row(v as VertexId, &mut neighbors)?;
        }
        let offsets: Vec<usize> = self.offsets.iter().map(|&o| o as usize).collect();
        Graph::from_csr_parts(self.labels.clone(), offsets, neighbors)
            .map_err(|e| self.graph_corrupt(e))
    }

    fn graph_corrupt(&self, e: GraphError) -> StoreError {
        StoreError::corrupt(self.path.clone(), format!("invalid graph structure: {e}"))
    }

    /// Local pruning of query `q` restricted to core vertices
    /// `core.start..core.end`, returning per-query-vertex **global** ids in
    /// ascending order. Bit-identical to the corresponding slice of
    /// whole-graph `local_pruning(q, g, r)`: for `r = 1` profiles are
    /// rebuilt row-by-row from the shared [`profile_r1_into`] definition
    /// (no view, no halo); for `r ≥ 2` an induced r-ball view is
    /// materialized, on which core vertices have exactly their global
    /// degrees and profiles.
    pub fn local_pruning_core(
        &self,
        q: &Graph,
        core: Range<VertexId>,
        radius: u32,
    ) -> Result<Vec<Vec<VertexId>>, StoreError> {
        if radius <= 1 {
            self.pruning_core_r1(q, core)
        } else {
            self.pruning_core_deep(q, core, radius)
        }
    }

    fn pruning_core_r1(
        &self,
        q: &Graph,
        core: Range<VertexId>,
    ) -> Result<Vec<Vec<VertexId>>, StoreError> {
        let q_profiles = all_profiles(q, 1);
        // Query vertices grouped by label, ascending — mirrors the
        // per-label candidate loop of `local_pruning_metered`.
        let mut q_by_label: Vec<Vec<VertexId>> = vec![Vec::new(); q.n_labels()];
        for u in q.vertices() {
            q_by_label[q.label(u) as usize].push(u);
        }
        let mut sets: Vec<Vec<VertexId>> = vec![Vec::new(); q.n_vertices()];
        let mut row: Vec<VertexId> = Vec::new();
        let mut prof: Profile = Vec::new();
        for v in core {
            let lv = self.label(v);
            let Some(us) = q_by_label.get(lv as usize).filter(|us| !us.is_empty()) else {
                continue;
            };
            row.clear();
            self.copy_row(v, &mut row)?;
            let dv = row.len();
            profile_r1_into(lv, row.iter().map(|&w| self.label(w)), &mut prof);
            for &u in us {
                if dv >= q.degree(u) && subsumes(&prof, &q_profiles[u as usize]) {
                    sets[u as usize].push(v);
                }
            }
        }
        Ok(sets)
    }

    fn pruning_core_deep(
        &self,
        q: &Graph,
        core: Range<VertexId>,
        radius: u32,
    ) -> Result<Vec<Vec<VertexId>>, StoreError> {
        let view = self.partition_view(core.clone(), radius)?;
        let profiles = all_profiles(&view.graph, radius);
        let core_local = |lv: VertexId| {
            let g = view.origin[lv as usize];
            g >= core.start && g < core.end
        };
        let cs = local_pruning_scoped(q, &view.graph, radius, &profiles, &core_local);
        Ok(cs
            .sets
            .into_iter()
            .map(|s| s.into_iter().map(|lv| view.origin[lv as usize]).collect())
            .collect())
    }

    /// Materializes the induced subgraph on the closed `radius`-hop ball of
    /// `core`. Core vertices keep exactly their global degrees and
    /// radius-`radius` profiles (the ball is closed under paths of length
    /// ≤ `radius` from the core).
    pub fn partition_view(
        &self,
        core: Range<VertexId>,
        radius: u32,
    ) -> Result<PartitionView, StoreError> {
        let n = self.n_vertices();
        let mut in_ball = vec![false; n];
        let mut frontier: Vec<VertexId> = core.clone().collect();
        for &v in &frontier {
            in_ball[v as usize] = true;
        }
        let mut row: Vec<VertexId> = Vec::new();
        for _ in 0..radius {
            let mut next = Vec::new();
            for &v in &frontier {
                row.clear();
                self.copy_row(v, &mut row)?;
                for &w in &row {
                    if !in_ball[w as usize] {
                        in_ball[w as usize] = true;
                        next.push(w);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        let origin: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| in_ball[v as usize])
            .collect();
        let graph = self.induced_on(&origin, |v| in_ball[v as usize])?;
        Ok(PartitionView { graph, origin })
    }

    /// Builds the working set of a candidate union: vertices
    /// `union ∪ N(union)`, edges from union rows only. `union` must be
    /// sorted ascending and deduplicated.
    pub fn induced_working_set(&self, union: &[VertexId]) -> Result<WorkingSet, StoreError> {
        debug_assert!(union.windows(2).all(|w| w[0] < w[1]));
        let mut verts: Vec<VertexId> = union.to_vec();
        let mut row: Vec<VertexId> = Vec::new();
        for &w in union {
            row.clear();
            self.copy_row(w, &mut row)?;
            verts.extend_from_slice(&row);
        }
        verts.sort_unstable();
        verts.dedup();
        let origin = verts;
        let local = |g: VertexId| -> usize {
            // Every id here came from `union` or a union row, so it is in
            // `origin` by construction.
            origin.partition_point(|&x| x < g)
        };
        let in_union = |g: VertexId| union.binary_search(&g).is_ok();
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); origin.len()];
        for &w in union {
            row.clear();
            self.copy_row(w, &mut row)?;
            let wl = local(w);
            for &x in &row {
                let xl = local(x);
                adj[wl].push(xl as VertexId);
                if !in_union(x) {
                    adj[xl].push(wl as VertexId);
                }
            }
        }
        let mut offsets = Vec::with_capacity(origin.len() + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        for list in &mut adj {
            list.sort_unstable();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        let labels: Vec<Label> = origin.iter().map(|&g| self.label(g)).collect();
        let graph =
            Graph::from_csr_parts(labels, offsets, neighbors).map_err(|e| self.graph_corrupt(e))?;
        Ok(WorkingSet { graph, origin })
    }

    /// Induced subgraph on `origin` (sorted ascending); `member` must agree
    /// with `origin` membership.
    fn induced_on(
        &self,
        origin: &[VertexId],
        member: impl Fn(VertexId) -> bool,
    ) -> Result<Graph, StoreError> {
        let mut offsets = Vec::with_capacity(origin.len() + 1);
        offsets.push(0usize);
        let mut neighbors: Vec<VertexId> = Vec::new();
        let mut row: Vec<VertexId> = Vec::new();
        for &g in origin {
            row.clear();
            self.copy_row(g, &mut row)?;
            for &w in &row {
                if member(w) {
                    neighbors.push(origin.partition_point(|&x| x < w) as VertexId);
                }
            }
            offsets.push(neighbors.len());
        }
        let labels: Vec<Label> = origin.iter().map(|&g| self.label(g)).collect();
        Graph::from_csr_parts(labels, offsets, neighbors).map_err(|e| self.graph_corrupt(e))
    }
}

/// Streams bytes `[16..file_len)` of an open store file through FNV-1a-64
/// and compares against the header's stored checksum, without retaining the
/// adjacency in memory. Leaves the file position unspecified.
/// Reads `count` fixed-width items from `f` through `scratch`, decoding
/// slice by slice so peak memory is the output vector plus one scratch
/// buffer — never a whole-section byte copy.
fn read_decoded<T>(
    f: &mut File,
    scratch: &mut [u8],
    width: usize,
    count: usize,
    path: &Path,
    decode: impl Fn(&[u8]) -> Vec<T>,
) -> Result<Vec<T>, StoreError> {
    let mut out: Vec<T> = Vec::with_capacity(count);
    let mut remaining = width * count;
    let per_read = scratch.len() - scratch.len() % width.max(1);
    while remaining > 0 {
        let take = remaining.min(per_read);
        f.read_exact(&mut scratch[..take])
            .map_err(|e| StoreError::io_at(path, e))?;
        out.extend(decode(&scratch[..take]));
        remaining -= take;
    }
    Ok(out)
}

fn verify_file_checksum(
    f: &mut File,
    file_len: u64,
    expected: u64,
    path: &Path,
) -> Result<(), StoreError> {
    f.seek(SeekFrom::Start(16))
        .map_err(|e| StoreError::io_at(path, e))?;
    let mut hasher = format::Fnv64::new();
    let mut remaining = file_len - 16;
    let mut buf = vec![0u8; (1usize << 20).min(remaining as usize).max(1)];
    while remaining > 0 {
        let take = (remaining as usize).min(buf.len());
        f.read_exact(&mut buf[..take])
            .map_err(|e| StoreError::io_at(path, e))?;
        hasher.update(&buf[..take]);
        remaining -= take as u64;
    }
    if hasher.finish() != expected {
        return Err(StoreError::corrupt(
            Some(path.to_path_buf()),
            "checksum mismatch".to_string(),
        ));
    }
    Ok(())
}

/// Structure-checks adjacency rows: each row sorted strictly ascending,
/// ids in range, no self-loops. `first_row` is the global id of the row at
/// `row_offsets[0]`; `row_offsets` are relative to `neighbors[0]`.
fn validate_rows(
    neighbors: &[VertexId],
    row_offsets: &[u64],
    first_row: usize,
    n: usize,
    path: Option<&Path>,
) -> Result<(), StoreError> {
    let corrupt = |detail: String| StoreError::corrupt(path.map(Path::to_path_buf), detail);
    if row_offsets.last().copied().unwrap_or(0) as usize != neighbors.len() {
        return Err(corrupt(format!(
            "adjacency section has {} entries but offsets imply {:?}",
            neighbors.len(),
            row_offsets.last()
        )));
    }
    for (i, w) in row_offsets.windows(2).enumerate() {
        let v = (first_row + i) as VertexId;
        let row = &neighbors[w[0] as usize..w[1] as usize];
        if row.windows(2).any(|p| p[0] >= p[1]) {
            return Err(corrupt(format!(
                "adjacency list of vertex {v} is unsorted or has duplicates"
            )));
        }
        for &u in row {
            if (u as usize) >= n {
                return Err(corrupt(format!(
                    "vertex {v} lists neighbor {u}, outside 0..{n}"
                )));
            }
            if u == v {
                return Err(corrupt(format!("vertex {v} lists a self-loop")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_graph;
    use neursc_match::candidates::local_pruning;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, extra_edges: usize, n_labels: u32, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<Label> = (0..n).map(|_| rng.gen_range(0..n_labels)).collect();
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        // Spanning path keeps the graph connected-ish and degree ≥ 1.
        for v in 1..n {
            edges.push((v as VertexId - 1, v as VertexId));
        }
        for _ in 0..extra_edges {
            let a = rng.gen_range(0..n) as VertexId;
            let b = rng.gen_range(0..n) as VertexId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        Graph::from_edges(n, &labels, &edges).unwrap()
    }

    fn tiny_query() -> Graph {
        Graph::from_edges(3, &[0, 1, 0], &[(0, 1), (1, 2)]).unwrap()
    }

    fn streamed(chunk_edges: usize, max_chunks: usize) -> AccessMode {
        AccessMode::Streamed {
            chunk_edges,
            max_chunks,
        }
    }

    #[test]
    fn resident_roundtrip_preserves_the_graph() {
        let g = random_graph(64, 200, 4, 1);
        let store = GraphStore::open_bytes(encode_graph(&g), AccessMode::Resident).unwrap();
        assert_eq!(store.n_vertices(), g.n_vertices());
        assert_eq!(store.n_edges(), g.n_edges());
        assert_eq!(store.n_labels(), g.n_labels());
        assert_eq!(store.max_degree(), g.max_degree());
        assert_eq!(store.to_graph().unwrap(), g);
        assert!(!store.is_streamed());
    }

    #[test]
    fn streamed_rows_match_resident_even_with_tiny_cache() {
        let g = random_graph(80, 300, 4, 2);
        let bytes = encode_graph(&g);
        let store = GraphStore::open_bytes(bytes, streamed(16, 2)).unwrap();
        assert!(store.is_streamed());
        let mut row = Vec::new();
        for v in g.vertices() {
            row.clear();
            store.copy_row(v, &mut row).unwrap();
            assert_eq!(row.as_slice(), g.neighbors(v), "row {v}");
            assert_eq!(store.degree(v), g.degree(v));
            assert_eq!(store.label(v), g.label(v));
        }
        let stats = store.cache_stats();
        assert!(stats.misses > 0, "tiny cache must have missed");
        assert_eq!(store.to_graph().unwrap(), g);
    }

    #[test]
    fn streamed_cache_hits_on_locality() {
        let g = random_graph(40, 100, 3, 3);
        let store = GraphStore::open_bytes(encode_graph(&g), streamed(1 << 20, 4)).unwrap();
        let mut row = Vec::new();
        for v in g.vertices() {
            row.clear();
            store.copy_row(v, &mut row).unwrap();
        }
        let stats = store.cache_stats();
        assert_eq!(stats.misses, 1, "one chunk covers the whole graph");
        assert_eq!(stats.hits, g.n_vertices() as u64 - 1);
    }

    #[test]
    fn label_frequency_and_pruning_work() {
        let g = random_graph(50, 80, 3, 4);
        let store = GraphStore::open_bytes(encode_graph(&g), AccessMode::Resident).unwrap();
        for l in 0..3u32 {
            let expect = g.vertices().filter(|&v| g.label(v) == l).count() as u64;
            assert_eq!(store.label_frequency(l), expect);
        }
        assert_eq!(store.label_frequency(99), 0);
        let q = tiny_query();
        let expect: u64 = q
            .vertices()
            .map(|u| g.vertices().filter(|&v| g.label(v) == q.label(u)).count() as u64)
            .sum();
        assert_eq!(store.local_pruning_work(&q), expect);
    }

    #[test]
    fn core_pruning_concatenates_to_whole_graph_r1() {
        let g = random_graph(60, 150, 3, 5);
        let q = tiny_query();
        let whole = local_pruning(&q, &g, 1);
        for mode in [AccessMode::Resident, streamed(32, 2)] {
            let store = GraphStore::open_bytes(encode_graph(&g), mode).unwrap();
            for k in [1u32, 2, 3, 7] {
                let n = g.n_vertices() as VertexId;
                let step = n.div_ceil(k);
                let mut sets: Vec<Vec<VertexId>> = vec![Vec::new(); q.n_vertices()];
                let mut start = 0;
                while start < n {
                    let end = (start + step).min(n);
                    let part = store.local_pruning_core(&q, start..end, 1).unwrap();
                    for (u, s) in part.into_iter().enumerate() {
                        sets[u].extend(s);
                    }
                    start = end;
                }
                for u in q.vertices() {
                    assert_eq!(sets[u as usize], whole.get(u), "k={k}, u={u}");
                }
            }
        }
    }

    #[test]
    fn core_pruning_concatenates_to_whole_graph_r2() {
        let g = random_graph(40, 80, 3, 6);
        let q = tiny_query();
        let whole = local_pruning(&q, &g, 2);
        let store = GraphStore::open_bytes(encode_graph(&g), streamed(64, 3)).unwrap();
        let n = g.n_vertices() as VertexId;
        let mut sets: Vec<Vec<VertexId>> = vec![Vec::new(); q.n_vertices()];
        for start in (0..n).step_by(13) {
            let end = (start + 13).min(n);
            let part = store.local_pruning_core(&q, start..end, 2).unwrap();
            for (u, s) in part.into_iter().enumerate() {
                sets[u].extend(s);
            }
        }
        for u in q.vertices() {
            assert_eq!(sets[u as usize], whole.get(u), "u={u}");
        }
    }

    #[test]
    fn partition_view_preserves_core_degrees_and_labels() {
        let g = random_graph(50, 120, 4, 7);
        let store = GraphStore::open_bytes(encode_graph(&g), streamed(32, 2)).unwrap();
        let core = 10u32..25;
        let view = store.partition_view(core.clone(), 1).unwrap();
        for vg in core {
            let lv = view.local_of(vg).unwrap();
            assert_eq!(view.graph.degree(lv as VertexId), g.degree(vg));
            assert_eq!(view.graph.label(lv as VertexId), g.label(vg));
        }
    }

    #[test]
    fn working_set_preserves_union_rows_exactly() {
        let g = random_graph(60, 150, 3, 8);
        let store = GraphStore::open_bytes(encode_graph(&g), streamed(32, 2)).unwrap();
        let union: Vec<VertexId> = (0..g.n_vertices() as VertexId).step_by(3).collect();
        let ws = store.induced_working_set(&union).unwrap();
        for &v in &union {
            let lv = ws.local_of(v).unwrap() as VertexId;
            let mapped: Vec<VertexId> = ws
                .graph
                .neighbors(lv)
                .iter()
                .map(|&w| ws.origin[w as usize])
                .collect();
            assert_eq!(mapped, g.neighbors(v), "union row {v} altered");
        }
        // Halo vertices keep only their union edges.
        for (lv, &gv) in ws.origin.iter().enumerate() {
            if union.binary_search(&gv).is_err() {
                for &w in ws.graph.neighbors(lv as VertexId) {
                    assert!(union.binary_search(&ws.origin[w as usize]).is_ok());
                }
            }
        }
    }

    #[test]
    fn localize_maps_candidates_order_preserving() {
        let g = random_graph(30, 60, 3, 9);
        let store = GraphStore::open_bytes(encode_graph(&g), AccessMode::Resident).unwrap();
        let q = tiny_query();
        let whole = local_pruning(&q, &g, 1);
        let union = whole.union();
        if union.is_empty() {
            return;
        }
        let ws = store.induced_working_set(&union).unwrap();
        let local = ws.localize(&whole.sets).unwrap();
        for u in q.vertices() {
            let back: Vec<VertexId> = local
                .get(u)
                .iter()
                .map(|&lv| ws.origin[lv as usize])
                .collect();
            assert_eq!(back, whole.get(u));
        }
    }

    #[test]
    fn open_missing_file_is_io_not_corrupt() {
        let e = GraphStore::open("/nonexistent/neursc.nscs", AccessMode::Resident).unwrap_err();
        assert!(!e.is_corruption());
    }

    #[test]
    fn file_roundtrip_in_both_modes() {
        let g = random_graph(64, 200, 4, 10);
        let dir = std::env::temp_dir().join(format!("neursc_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round.nscs");
        crate::format::pack_graph(&g, &path).unwrap();
        for mode in [AccessMode::Resident, streamed(64, 2)] {
            let store = GraphStore::open(&path, mode).unwrap();
            assert_eq!(store.to_graph().unwrap(), g);
            assert_eq!(store.path(), Some(path.as_path()));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crafted_image_with_valid_checksum_is_rejected() {
        // Build a syntactically well-formed image whose adjacency has an
        // unsorted row, then re-stamp the checksum: structure checks must
        // still reject it in both modes.
        let g = Graph::from_edges(3, &[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut bytes = encode_graph(&g);
        let lay = crate::format::parse_header(&bytes, bytes.len() as u64, None).unwrap();
        let nb = lay.neighbors_off();
        // Row of vertex 0 is [1, 2]; swap to [2, 1].
        bytes[nb..nb + 4].copy_from_slice(&2u32.to_le_bytes());
        bytes[nb + 4..nb + 8].copy_from_slice(&1u32.to_le_bytes());
        let ck = crate::format::fnv1a64(&bytes[16..]);
        bytes[8..16].copy_from_slice(&ck.to_le_bytes());
        let e = GraphStore::open_bytes(bytes.clone(), AccessMode::Resident).unwrap_err();
        assert!(e.is_corruption());
        // Streamed: open succeeds (rows load lazily) or fails; any row
        // access must fail before bad adjacency is served.
        match GraphStore::open_bytes(bytes, streamed(2, 2)) {
            Err(e) => assert!(e.is_corruption()),
            Ok(store) => {
                let mut row = Vec::new();
                assert!(store.copy_row(0, &mut row).unwrap_err().is_corruption());
            }
        }
    }
}
