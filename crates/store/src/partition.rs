//! Deterministic contiguous edge-cut partitioning of a stored graph.
//!
//! Cores are contiguous vertex ranges chosen so each carries roughly the
//! same number of adjacency entries (edge-balanced, not vertex-balanced —
//! filtering cost is dominated by row scans). Contiguity matters twice:
//! per-set candidate order is preserved when per-partition results are
//! concatenated in partition order, and a streamed [`crate::GraphStore`]
//! reads each core as one forward pass over consecutive chunks.

use std::ops::Range;

use neursc_graph::types::VertexId;

use crate::store::GraphStore;

/// A deterministic split of `0..n` into contiguous cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// `k + 1` boundaries; core `i` is `bounds[i]..bounds[i+1]`.
    bounds: Vec<VertexId>,
}

impl PartitionPlan {
    /// Splits the store's vertex range into `k` contiguous, edge-balanced
    /// cores. `k` is clamped to at least 1; cores may be empty when `k`
    /// exceeds the vertex count. The plan depends only on the degree index,
    /// so it is identical across resident and streamed opens of the same
    /// image.
    pub fn contiguous(store: &GraphStore, k: usize) -> PartitionPlan {
        let k = k.max(1);
        let n = store.n_vertices() as VertexId;
        let total = 2 * store.n_edges() as u64;
        let mut bounds = Vec::with_capacity(k + 1);
        bounds.push(0);
        for i in 1..k {
            let target = total * i as u64 / k as u64;
            // First vertex whose cumulative degree reaches the target.
            let mut lo = *bounds.last().unwrap_or(&0);
            let mut hi = n;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if store.cumulative_degree(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            bounds.push(lo);
        }
        bounds.push(n);
        PartitionPlan { bounds }
    }

    /// Number of cores.
    pub fn n_partitions(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The vertex range of core `i`.
    pub fn core(&self, i: usize) -> Range<VertexId> {
        self.bounds[i]..self.bounds[i + 1]
    }

    /// All cores in order.
    pub fn cores(&self) -> impl Iterator<Item = Range<VertexId>> + '_ {
        (0..self.n_partitions()).map(|i| self.core(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_graph;
    use crate::store::AccessMode;
    use neursc_graph::Graph;

    fn star_plus_path() -> Graph {
        // Vertex 0 is a hub (degree 6); 7..12 a path — uneven degrees.
        let labels = vec![0u32; 13];
        let mut edges: Vec<(u32, u32)> = (1..7).map(|v| (0, v)).collect();
        edges.extend((7..12).map(|v| (v, v + 1)));
        edges.push((6, 7));
        Graph::from_edges(13, &labels, &edges).unwrap()
    }

    fn open(g: &Graph) -> GraphStore {
        GraphStore::open_bytes(encode_graph(g), AccessMode::Resident).unwrap()
    }

    #[test]
    fn cores_partition_the_vertex_range() {
        let store = open(&star_plus_path());
        for k in [1usize, 2, 3, 4, 7, 13, 20] {
            let plan = PartitionPlan::contiguous(&store, k);
            assert_eq!(plan.n_partitions(), k);
            let mut next = 0u32;
            for core in plan.cores() {
                assert_eq!(core.start, next, "k={k}");
                assert!(core.end >= core.start);
                next = core.end;
            }
            assert_eq!(next, store.n_vertices() as u32, "k={k}");
        }
    }

    #[test]
    fn plan_is_deterministic_and_mode_independent() {
        let g = star_plus_path();
        let resident = open(&g);
        let streamed = GraphStore::open_bytes(
            encode_graph(&g),
            AccessMode::Streamed {
                chunk_edges: 4,
                max_chunks: 2,
            },
        )
        .unwrap();
        for k in 1..6 {
            assert_eq!(
                PartitionPlan::contiguous(&resident, k),
                PartitionPlan::contiguous(&streamed, k)
            );
        }
    }

    #[test]
    fn split_boundary_is_edge_balanced() {
        let store = open(&star_plus_path());
        let plan = PartitionPlan::contiguous(&store, 2);
        // Cumulative degrees: 0,6,7,…,11,13,… — half of the 24 adjacency
        // entries is reached at vertex 7, so the boundary lands there.
        assert_eq!(plan.core(0), 0..7);
        assert_eq!(plan.core(1), 7..13);
        let half = store.cumulative_degree(7);
        assert!(half >= 12 && 24 - half <= 12);
    }

    #[test]
    fn zero_partitions_clamps_to_one() {
        let store = open(&star_plus_path());
        let plan = PartitionPlan::contiguous(&store, 0);
        assert_eq!(plan.n_partitions(), 1);
        assert_eq!(plan.core(0), 0..13);
    }
}
