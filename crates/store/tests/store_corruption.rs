//! Property-based acceptance of the `NSCS` graph-store format, mirroring
//! the warm-state snapshot suite (`crates/serve/tests/snapshot_roundtrip.rs`):
//! pack → open → materialize is the identity, and every corruption —
//! truncation at any byte, any single bit flip — fails with a typed
//! [`neursc_store::StoreError::Corrupt`] **at open**, before any adjacency
//! is handed out, in both resident and streamed modes, for in-memory
//! images and for store files on disk.

use neursc_graph::Graph;
use neursc_store::{encode_graph, AccessMode, GraphStore};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..24).prop_flat_map(|n| {
        (vec(0u32..4, n), vec((0..n as u32, 0..n as u32), 0..40)).prop_map(
            move |(labels, pairs)| {
                let edges: Vec<(u32, u32)> = pairs
                    .into_iter()
                    .filter(|&(a, b)| a != b)
                    .map(|(a, b)| (a.min(b), a.max(b)))
                    .collect();
                Graph::from_edges(n, &labels, &edges).expect("arbitrary graph is valid")
            },
        )
    })
}

fn modes() -> [AccessMode; 2] {
    [
        AccessMode::Resident,
        AccessMode::Streamed {
            chunk_edges: 8,
            max_chunks: 2,
        },
    ]
}

/// Writes `bytes` to a unique temp file and returns its path.
fn temp_store(bytes: &[u8], tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neursc_store_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{tag}.nscs"));
    std::fs::write(&path, bytes).expect("write temp store");
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// pack → open (either mode) → materialize reproduces the graph.
    #[test]
    fn pack_open_materialize_is_identity(g in arb_graph()) {
        let bytes = encode_graph(&g);
        for mode in modes() {
            let store = match GraphStore::open_bytes(bytes.clone(), mode) {
                Ok(s) => s,
                Err(e) => return Err(TestCaseError(format!("open of fresh image failed: {e}"))),
            };
            let back = match store.to_graph() {
                Ok(b) => b,
                Err(e) => return Err(TestCaseError(format!("materialize failed: {e}"))),
            };
            prop_assert!(back == g, "materialized graph differs");
        }
    }

    /// Truncation at any byte is a typed corruption at open, both modes.
    #[test]
    fn truncation_at_any_byte_is_typed_corruption(g in arb_graph(), frac in 0.0f64..1.0) {
        let bytes = encode_graph(&g);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let cut = cut.min(bytes.len() - 1);
        for mode in modes() {
            match GraphStore::open_bytes(bytes[..cut].to_vec(), mode) {
                Err(e) => prop_assert!(e.is_corruption(), "cut at {}: {}", cut, e),
                Ok(_) => return Err(TestCaseError(format!("accepted store truncated to {cut} bytes"))),
            }
        }
    }

    /// Any single bit flip — magic, version, checksum field, counts,
    /// labels, offsets or adjacency — is a typed corruption at open.
    #[test]
    fn any_single_bitflip_is_typed_corruption(g in arb_graph(), pos in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = encode_graph(&g);
        let i = (((bytes.len() - 1) as f64) * pos) as usize;
        bytes[i] ^= 1 << bit;
        for mode in modes() {
            match GraphStore::open_bytes(bytes.clone(), mode) {
                Err(e) => prop_assert!(e.is_corruption(), "byte {} bit {}: {}", i, bit, e),
                Ok(_) => return Err(TestCaseError(format!("accepted store with bit {bit} of byte {i} flipped"))),
            }
        }
    }

    /// The on-disk path behaves identically: a damaged file fails at open
    /// (and names the file in the error), before any adjacency is served.
    #[test]
    fn damaged_file_fails_at_open(g in arb_graph(), frac in 0.0f64..1.0, bit in 0u8..8, truncate in any::<bool>()) {
        let mut bytes = encode_graph(&g);
        let tag = if truncate {
            let cut = ((bytes.len() as f64) * frac) as usize;
            let cut = cut.min(bytes.len() - 1);
            bytes.truncate(cut);
            format!("trunc_{cut}")
        } else {
            let i = (((bytes.len() - 1) as f64) * frac) as usize;
            bytes[i] ^= 1 << bit;
            format!("flip_{i}_{bit}")
        };
        let path = temp_store(&bytes, &tag);
        for mode in modes() {
            match GraphStore::open(&path, mode) {
                Err(e) => {
                    prop_assert!(e.is_corruption(), "{tag}: {e}");
                    prop_assert!(e.to_string().contains(&tag), "error does not name the file: {e}");
                }
                Ok(_) => {
                    std::fs::remove_file(&path).ok();
                    return Err(TestCaseError(format!("accepted damaged store file ({tag})")));
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
