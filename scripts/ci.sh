#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh            (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (no unwrap/expect in library code) =="
# Library code on input-dependent paths must return typed errors, never
# panic (DESIGN.md, "Failure semantics"). Tests/benches/bins are exempt.
cargo clippy -p neursc-graph -p neursc-match -p neursc-core -p neursc-serve \
    -p neursc-sample -p neursc-oracle -p neursc-store --lib -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

OUR_CRATES=(-p neursc -p neursc-graph -p neursc-match -p neursc-nn -p neursc-gnn
            -p neursc-core -p neursc-baselines -p neursc-workloads -p neursc-bench
            -p neursc-serve -p neursc-sample -p neursc-oracle -p neursc-store)

echo "== cargo doc (deny warnings, our crates only) =="
# Vendored stand-ins (vendor/*) are API-subset stubs and are not held to
# the documentation bar; every first-party crate is.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps "${OUR_CRATES[@]}"

echo "== cargo test (unit + integration + doc-tests) =="
cargo test --workspace -q
cargo test -q --doc "${OUR_CRATES[@]}"

echo "== fault-injection suite =="
cargo test -q --test fault_injection

echo "== serve smoke (daemon over loopback via the real CLI binary) =="
cargo test -q --test serve_smoke

echo "== supervise smoke (kill -9 mid-traffic, restart, quarantine) =="
cargo test -q --test supervise_smoke

echo "== serve equivalence + protocol fuzz =="
cargo test -q -p neursc-serve

echo "== observability determinism suite =="
cargo test -q -p neursc-core --test obs_determinism

echo "== no-op sink overhead gate (DESIGN.md §8: < 2%) =="
cargo run --release -q -p neursc-bench --bin obs_overhead

echo "== backend comparison bench (WEst vs sampling + router hit rates) =="
cargo run --release -q -p neursc-bench --bin bench_backends

echo "== out-of-core store bench (streamed peak RSS < 50% of resident) =="
# Packs a 10^6-vertex graph and runs a partitioned estimate resident vs
# streamed; the binary itself asserts the memory budget and that the two
# estimates are bit-identical (DESIGN.md §14).
cargo run --release -q -p neursc-bench --bin bench_store

echo "== differential soundness oracle soak (DESIGN.md §11) =="
# Fixed seed: deterministic in CI; the corpus replay test (tests/
# corpus_replay.rs, part of the workspace test run above) covers the
# previously-found bugs, this soaks fresh cases.
cargo run --release -q --bin neursc_cli -- fuzz --cases 300 --seed 42

echo "CI OK"
