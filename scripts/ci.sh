#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Usage: scripts/ci.sh            (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (no unwrap/expect in library code) =="
# Library code on input-dependent paths must return typed errors, never
# panic (DESIGN.md, "Failure semantics"). Tests/benches/bins are exempt.
cargo clippy -p neursc-graph -p neursc-match -p neursc-core --lib -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "== cargo test =="
cargo test --workspace -q

echo "== fault-injection suite =="
cargo test -q --test fault_injection

echo "CI OK"
