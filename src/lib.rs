//! # NeurSC — Neural Subgraph Counting with a Wasserstein Estimator
//!
//! A from-scratch Rust reproduction of the SIGMOD 2022 paper, spanning the
//! full system: graph substrate, exact subgraph matching (filtering +
//! counting), a tensor/autograd library, GNN layers, the NeurSC model with
//! its Wasserstein discriminator, every baseline the paper compares
//! against, and the complete experiment workloads.
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `neursc-graph` | CSR labeled graphs, generators, sampling, WL |
//! | [`matching`] | `neursc-match` | candidate filtering, exact counting |
//! | [`nn`] | `neursc-nn` | tensors, autograd, layers, optimizers |
//! | [`gnn`] | `neursc-gnn` | GIN, bipartite attention, readout |
//! | [`core`] | `neursc-core` | NeurSC + WEst + discriminator + training |
//! | [`baselines`] | `neursc-baselines` | CSet, SumRDF, CS, WJ, JSUB, LSS, NSIC |
//! | [`workloads`] | `neursc-workloads` | datasets, queries, ground truth |
//! | [`serve`] | `neursc-serve` | resident estimator daemon (JSON over TCP/Unix) |
//! | [`oracle`] | `neursc-oracle` | differential soundness fuzzer + regression corpus |
//! | [`sample`] | `neursc-sample` | Horvitz–Thompson sampling estimator backend |
//! | [`store`] | `neursc-store` | binary NSCS graph store, streamed access, partitioning |
//!
//! ## Quickstart
//!
//! ```no_run
//! use neursc::prelude::*;
//!
//! // A data graph and some labeled training queries.
//! let g = neursc::workloads::datasets::dataset(DatasetId::Yeast);
//! let queries = build_query_set(&g, &QuerySetConfig::new(4, 50, 1));
//! let labeled = label_queries(&g, &queries, &GroundTruthConfig::default());
//!
//! // Train NeurSC and estimate.
//! let mut model = NeurSc::new(NeurScConfig::small(), 7);
//! model.fit(&g, &labeled).unwrap();
//! let estimate = model.estimate(&labeled[0].0, &g).unwrap();
//! println!("ĉ = {estimate:.1} (truth {})", labeled[0].1);
//! ```

pub use neursc_baselines as baselines;
pub use neursc_core as core;
pub use neursc_gnn as gnn;
pub use neursc_graph as graph;
pub use neursc_match as matching;
pub use neursc_nn as nn;
pub use neursc_oracle as oracle;
pub use neursc_sample as sample;
pub use neursc_serve as serve;
pub use neursc_store as store;
pub use neursc_workloads as workloads;

/// The common imports for applications.
pub mod prelude {
    pub use neursc_core::{GraphContext, NeurSc, NeurScConfig, Parallelism, Variant};
    pub use neursc_graph::sample::{sample_query, QuerySampler};
    pub use neursc_graph::{Graph, GraphBuilder};
    pub use neursc_match::{count_embeddings, filter_candidates, FilterConfig};
    pub use neursc_workloads::datasets::DatasetId;
    pub use neursc_workloads::ground_truth::{label_queries, GroundTruthConfig};
    pub use neursc_workloads::queries::{build_query_set, QuerySetConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        // Touch one item from each re-exported crate.
        let g = crate::graph::Graph::from_edges(2, &[0, 1], &[(0, 1)]).unwrap();
        assert_eq!(g.n_edges(), 1);
        let _ = crate::core::NeurScConfig::small();
        let _ = crate::nn::Tensor::zeros(1, 1);
        assert_eq!(crate::core::q_error(1.0, 1.0), 1.0);
    }
}
