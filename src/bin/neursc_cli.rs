//! `neursc-cli` — command-line front end for the NeurSC library.
//!
//! Lets a downstream user run the full workflow on `.graph` files without
//! writing Rust:
//!
//! ```text
//! neursc-cli generate --dataset yeast --out data.graph
//! neursc-cli queries  --data data.graph --size 8 --count 20 --out-dir qs/
//! neursc-cli count    --data data.graph --query qs/q0.graph
//! neursc-cli train    --data data.graph --queries qs/ --out model.txt
//! neursc-cli estimate --model model.txt --data data.graph --query qs/q0.graph
//! neursc-cli evaluate --model model.txt --data data.graph --queries qs/
//! ```
//!
//! `queries` writes one `q<i>.graph` per query plus a `counts.csv`
//! (`file,count`) with exact ground truth; `train`/`evaluate` read that
//! layout back.

use neursc::core::persist::{load_model, save_model};
use neursc::core::{
    FaultPlan, GraphContext, NeurSc, NeurScConfig, NeurScError, Recorder, TraceTime,
};
use neursc::graph::io::{load_graph, save_graph};
use neursc::graph::{Graph, GraphError};
use neursc::matching::count_embeddings;
use neursc::oracle::fuzz::{run_fuzz_with, FuzzConfig};
use neursc::serve::{serve, BackendChoice, Listen, RouterConfig, ServeConfig};
use neursc::workloads::datasets::{dataset, DatasetId};
use neursc::workloads::queries::{build_query_set, QuerySetConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// Exit codes (documented in USAGE): 0 success, 1 other failure, 2 usage,
/// 3 input parse error, 4 I/O error, 5 model-file corruption, 6 resource
/// budget exhausted, 7 contained worker panic.
const EXIT_OTHER: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_PARSE: u8 = 3;
const EXIT_IO: u8 = 4;
const EXIT_CORRUPT: u8 = 5;
const EXIT_BUDGET: u8 = 6;
const EXIT_PANICKED: u8 = 7;

/// A classified CLI failure: what to print and which code to exit with.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn other(message: impl Into<String>) -> Self {
        CliError {
            code: EXIT_OTHER,
            message: message.into(),
        }
    }

    fn usage(message: impl Into<String>) -> Self {
        CliError {
            code: EXIT_USAGE,
            message: message.into(),
        }
    }

    fn parse(message: impl Into<String>) -> Self {
        CliError {
            code: EXIT_PARSE,
            message: message.into(),
        }
    }

    fn io(message: impl Into<String>) -> Self {
        CliError {
            code: EXIT_IO,
            message: message.into(),
        }
    }
}

/// Renders an error with its full `source()` chain, skipping links whose
/// text the parent already embeds (several library `Display` impls inline
/// their cause).
fn chain(e: &dyn std::error::Error) -> String {
    let mut s = e.to_string();
    let mut src = e.source();
    while let Some(cause) = src {
        let m = cause.to_string();
        if !s.contains(&m) {
            s.push_str(": ");
            s.push_str(&m);
        }
        src = cause.source();
    }
    s
}

impl From<GraphError> for CliError {
    fn from(e: GraphError) -> Self {
        let code = match &e {
            _ if e.is_parse() => EXIT_PARSE,
            GraphError::Io { .. } => EXIT_IO,
            _ => EXIT_OTHER,
        };
        CliError {
            code,
            message: chain(&e),
        }
    }
}

impl From<neursc::store::StoreError> for CliError {
    fn from(e: neursc::store::StoreError) -> Self {
        let code = match &e {
            neursc::store::StoreError::Io { .. } => EXIT_IO,
            neursc::store::StoreError::Corrupt { .. } => EXIT_CORRUPT,
        };
        CliError {
            code,
            message: chain(&e),
        }
    }
}

impl From<NeurScError> for CliError {
    fn from(e: NeurScError) -> Self {
        let code = if e.is_corruption() {
            EXIT_CORRUPT
        } else if e.is_parse() {
            EXIT_PARSE
        } else if e.is_io() {
            EXIT_IO
        } else {
            match &e {
                NeurScError::Budget { .. } => EXIT_BUDGET,
                NeurScError::Panicked { .. } => EXIT_PANICKED,
                _ => EXIT_OTHER,
            }
        };
        CliError {
            code,
            message: chain(&e),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    // `graph` is a command family: fold the subcommand into the verb so
    // the remaining arguments parse as ordinary --flags.
    let (cmd, rest): (String, &[String]) = if cmd == "graph" {
        match rest.split_first() {
            Some((sub, r)) => (format!("graph {sub}"), r),
            None => {
                eprintln!("error: graph needs a subcommand (pack|info)\n\n{USAGE}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    } else {
        (cmd.clone(), rest)
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "queries" => cmd_queries(&opts),
        "count" => cmd_count(&opts),
        "train" => cmd_train(&opts),
        "estimate" => cmd_estimate(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "serve" => cmd_serve(&opts),
        "graph pack" => cmd_graph_pack(&opts),
        "graph info" => cmd_graph_info(&opts),
        "fuzz" => cmd_fuzz(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "\
neursc-cli — neural subgraph counting (NeurSC, SIGMOD 2022)

USAGE:
  neursc-cli generate --dataset <name>|--vertices N --degree D --labels L [--seed S] --out FILE
  neursc-cli queries  --data FILE --size N --count K [--seed S] [--budget B] --out-dir DIR
  neursc-cli count    --data FILE --query FILE [--budget B]
  neursc-cli train    --data FILE --queries DIR [--epochs N] [--seed S] [--threads T] [OBS] --out FILE
  neursc-cli estimate --model FILE --data FILE --query FILE [--threads T]
                      [--max-query-vertices V] [--inject-panic I] [OBS]
  neursc-cli evaluate --model FILE --data FILE --queries DIR [--threads T]
                      [--max-query-vertices V] [--inject-panic I] [OBS]
  neursc-cli serve    --model FILE (--data FILE | --graph-store FILE.nscs)
                      [--listen ADDR | --unix PATH]
                      [--backend west|sample|auto] [--router-volume-cap N]
                      [--router-cands-per-ms N]
                      [--threads T] [--max-batch N] [--batch-wait-us U]
                      [--max-pending N] [--max-frame-bytes B]
                      [--max-query-vertices V] [--cache-capacity C]
                      [--snapshot FILE] [--snapshot-interval-ms MS]
                      [--journal FILE] [--supervise] [--max-restarts N]
                      [--backoff-base-ms MS] [--backoff-cap-ms MS]
                      [--stable-after-ms MS]
                      [--chaos-panic SEQS] [--chaos-starve SEQS]
                      [--chaos-abort DIGESTS] [OBS]
  neursc-cli graph pack --data FILE --out FILE.nscs
  neursc-cli graph info --store FILE.nscs
  neursc-cli fuzz     [--cases N] [--seed S] [--minimize] [--out-dir DIR]

  OBS: [--trace-json FILE] [--metrics-json FILE] [--trace-time canonical|wall]

Datasets: Yeast, Human, HPRD, Wordnet, DBLP, EU2005, Youtube (Table 2 presets).

--threads T fans query preparation and per-substructure forwards out over T
worker threads; results are bit-identical to --threads 1.

--trace-json writes a Chrome trace_event file (open in chrome://tracing or
Perfetto) covering filtering, extraction, GNN forwards and training epochs.
The default --trace-time canonical uses logical lanes and ticks so the trace
is byte-identical across --threads settings; wall uses real microseconds and
OS thread ids. --metrics-json writes counters (cache hits, query outcomes),
gauges (loss, grad norm) and log-scale histograms (per-stage ns).

serve runs a resident estimator daemon speaking line-delimited JSON over TCP
(or a Unix socket with --unix). It prints `listening on ADDR` once bound and
runs until a client sends the `shutdown` verb. --backend picks the estimator:
west (the trained GNN, default), sample (filtering–sampling with confidence
intervals, no training needed), or auto (cost-based per-request routing on
candidate-space volume and the declared deadline; tune with
--router-volume-cap / --router-cands-per-ms; decisions are counted under
router.backend.* in `stats`). --max-query-vertices rejects
over-sized queries at admission; --chaos-panic/--chaos-starve take
comma-separated admission sequence numbers whose requests get an injected
worker panic / starved filter budget (fault-injection testing);
--chaos-abort takes comma-separated hex request digests whose batch slot
aborts the process (crash-drill testing).

--snapshot FILE persists the warm caches (checksummed, versioned): restored
at startup when it matches the current graph and model, rewritten on
--snapshot-interval-ms (and always at drain). A corrupt or mismatched
snapshot degrades to a cold rebuild with a typed, counted reason — never a
wrong answer. --supervise runs the daemon as a child worker under a
watchdog: crashes restart it with exponential backoff (--max-restarts,
--backoff-base-ms, --backoff-cap-ms, --stable-after-ms), and the fsync'd
admission journal (--journal, default neursc.journal) identifies requests
in flight at death — a request digest implicated in 2 consecutive crashes
is quarantined (typed crash_suspect rejection). Typed worker exits (codes
1-7) propagate without restarting; a clean drain exits 0.

--max-query-vertices on estimate/evaluate caps the resource budget (exit 6
when a query exceeds it); --inject-panic I trips a contained panic on item I
(exit 7 on estimate, a reported exclusion on evaluate).

graph pack converts a text .graph file into the binary NSCS store format
(packed CSR, checksummed, openable memory-resident or chunk-streamed);
graph info verifies and describes a packed store. serve --graph-store loads
the data graph from a packed store instead of a text file — the image is
checksum-verified before the first estimate. A corrupt store exits 5.

fuzz runs the differential soundness oracle: N seeded random cases checked
against the exact enumerator (filter soundness, extraction count
preservation, metamorphic invariances — see DESIGN.md §11). --minimize
delta-debugs each violating case before reporting; --out-dir writes
violations as replayable .case files. Exit 0 iff every case passed.

Exit codes: 0 success, 1 other failure, 2 usage, 3 input parse error,
4 I/O error, 5 model-file corruption, 6 resource budget exhausted,
7 contained worker panic.";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        // Bare boolean flags carry no value; everything else requires one
        // (a value-less `--data` stays a usage error, not an empty path).
        const BOOL_FLAGS: &[&str] = &["minimize", "supervise"];
        if BOOL_FLAGS.contains(&key) {
            out.insert(key.to_string(), String::new());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            out.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(out)
}

fn req<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, CliError> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::usage(format!("missing required --{key}")))
}

fn num<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, CliError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("bad value for --{key}: {v}"))),
    }
}

fn opt_num<T: std::str::FromStr>(opts: &Opts, key: &str) -> Result<Option<T>, CliError> {
    match opts.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::usage(format!("bad value for --{key}: {v}"))),
    }
}

/// Parses a comma-separated list of non-negative integers (e.g. `3,11`).
fn num_list(opts: &Opts, key: &str) -> Result<Vec<u64>, CliError> {
    let Some(v) = opts.get(key) else {
        return Ok(Vec::new());
    };
    v.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| CliError::usage(format!("bad value for --{key}: {v}")))
        })
        .collect()
}

/// Observability wiring parsed from `--trace-json` / `--metrics-json` /
/// `--trace-time`. When neither export path is given the context carries
/// the no-op sink and the pipeline pays (almost) nothing.
struct ObsSetup {
    ctx: GraphContext,
    recorder: Option<Arc<Recorder>>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace_time: TraceTime,
}

impl ObsSetup {
    fn from_opts(opts: &Opts) -> Result<Self, CliError> {
        let trace_out = opts.get("trace-json").map(PathBuf::from);
        let metrics_out = opts.get("metrics-json").map(PathBuf::from);
        let trace_time = match opts.get("trace-time") {
            None => TraceTime::Canonical,
            Some(s) => TraceTime::parse(s).ok_or_else(|| {
                CliError::usage(format!("bad --trace-time {s:?} (canonical|wall)"))
            })?,
        };
        let (ctx, recorder) = if trace_out.is_some() || metrics_out.is_some() {
            let rec = Arc::new(Recorder::new());
            let sink: Arc<dyn neursc::core::ObsSink> = rec.clone();
            (GraphContext::with_obs(sink), Some(rec))
        } else {
            (GraphContext::new(), None)
        };
        Ok(ObsSetup {
            ctx,
            recorder,
            trace_out,
            metrics_out,
            trace_time,
        })
    }

    /// Writes whichever exports were requested. Called after the command's
    /// pipeline work finishes (including on the success path only — a
    /// failed run exits through `CliError` before reaching this).
    fn export(&self) -> Result<(), CliError> {
        let Some(rec) = &self.recorder else {
            return Ok(());
        };
        if let Some(path) = &self.trace_out {
            std::fs::write(path, rec.chrome_trace_json(self.trace_time))
                .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
            eprintln!("wrote trace to {}", path.display());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, rec.metrics_json())
                .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
            eprintln!("wrote metrics to {}", path.display());
        }
        Ok(())
    }
}

/// Applies `--threads` to a model's parallelism config and pushes the
/// setting down into the nn kernels. Defaults to sequential execution.
fn apply_threads(model: &mut NeurSc, opts: &Opts) -> Result<(), CliError> {
    let threads: usize = num(opts, "threads", model.config.parallelism.threads)?;
    if threads == 0 {
        return Err(CliError::usage("--threads must be at least 1"));
    }
    model.config.parallelism.threads = threads;
    model.config.parallelism.apply_to_kernels();
    Ok(())
}

fn cmd_generate(opts: &Opts) -> Result<(), CliError> {
    let out = PathBuf::from(req(opts, "out")?);
    let g = if let Some(name) = opts.get("dataset") {
        let id = DatasetId::parse(name)
            .ok_or_else(|| CliError::usage(format!("unknown dataset {name}")))?;
        dataset(id)
    } else {
        let n: usize = num(opts, "vertices", 1000)?;
        let d: f64 = num(opts, "degree", 8.0)?;
        let l: usize = num(opts, "labels", 8)?;
        let seed: u64 = num(opts, "seed", 1)?;
        neursc::graph::generate::generate(
            &neursc::graph::generate::GraphSpec {
                n_vertices: n,
                avg_degree: d,
                n_labels: l,
                label_zipf: 0.8,
                model: neursc::graph::generate::DegreeModel::Community {
                    community_size: 25,
                    intra_fraction: 0.8,
                },
            },
            seed,
        )
    };
    save_graph(&g, &out)?;
    println!(
        "wrote {} (|V|={} |E|={} |L|={})",
        out.display(),
        g.n_vertices(),
        g.n_edges(),
        g.n_labels()
    );
    Ok(())
}

fn cmd_queries(opts: &Opts) -> Result<(), CliError> {
    let g = load_graph(Path::new(req(opts, "data")?))?;
    let size: usize = num(opts, "size", 8)?;
    let count: usize = num(opts, "count", 20)?;
    let seed: u64 = num(opts, "seed", 1)?;
    let budget: u64 = num(opts, "budget", 500_000_000)?;
    let dir = PathBuf::from(req(opts, "out-dir")?);
    std::fs::create_dir_all(&dir).map_err(|e| CliError::io(format!("{}: {e}", dir.display())))?;

    let queries = build_query_set(&g, &QuerySetConfig::new(size, count, seed));
    let mut csv = String::from("file,count\n");
    let mut kept = 0;
    for (i, q) in queries.iter().enumerate() {
        let r = count_embeddings(q, &g, budget);
        let Some(c) = r.exact() else {
            eprintln!("q{i}: over budget, dropped");
            continue;
        };
        let name = format!("q{i}.graph");
        save_graph(q, &dir.join(&name))?;
        csv.push_str(&format!("{name},{c}\n"));
        kept += 1;
    }
    std::fs::write(dir.join("counts.csv"), csv)
        .map_err(|e| CliError::io(format!("counts.csv: {e}")))?;
    println!("wrote {kept} labeled queries to {}", dir.display());
    Ok(())
}

fn cmd_count(opts: &Opts) -> Result<(), CliError> {
    let g = load_graph(Path::new(req(opts, "data")?))?;
    let q = load_graph(Path::new(req(opts, "query")?))?;
    let budget: u64 = num(opts, "budget", 2_000_000_000)?;
    let r = count_embeddings(&q, &g, budget);
    match r.exact() {
        Some(c) => println!("{c}"),
        None => {
            println!(
                "budget exhausted after {} expansions (≥ {})",
                r.expansions,
                r.lower_bound()
            );
            return Err(CliError::other("count exceeds budget"));
        }
    }
    Ok(())
}

fn load_labeled_dir(dir: &Path) -> Result<Vec<(Graph, u64)>, CliError> {
    let csv = std::fs::read_to_string(dir.join("counts.csv"))
        .map_err(|e| CliError::io(format!("{}: {e}", dir.join("counts.csv").display())))?;
    let mut out = Vec::new();
    for line in csv.lines().skip(1) {
        let (file, count) = line
            .split_once(',')
            .ok_or_else(|| CliError::parse(format!("bad counts.csv line: {line}")))?;
        let c: u64 = count
            .trim()
            .parse()
            .map_err(|_| CliError::parse(format!("bad count: {count}")))?;
        let q = load_graph(&dir.join(file.trim()))?;
        out.push((q, c));
    }
    Ok(out)
}

fn cmd_train(opts: &Opts) -> Result<(), CliError> {
    let g = load_graph(Path::new(req(opts, "data")?))?;
    let labeled = load_labeled_dir(Path::new(req(opts, "queries")?))?;
    let epochs: usize = num(opts, "epochs", 20)?;
    let seed: u64 = num(opts, "seed", 7)?;
    let out = PathBuf::from(req(opts, "out")?);

    let mut cfg = NeurScConfig::small();
    cfg.pretrain_epochs = epochs;
    cfg.adversarial_epochs = (epochs / 3).max(2);
    let mut model = NeurSc::new(cfg, seed);
    apply_threads(&mut model, opts)?;
    let obs = ObsSetup::from_opts(opts)?;
    let report = model.fit_with(&g, &labeled, &obs.ctx)?;
    obs.export()?;
    save_model(&model, &out)?;
    println!(
        "trained on {} queries ({} skipped, {} failed), final loss {:.3}; wrote {}",
        labeled.len(),
        report.skipped_queries,
        report.failed_queries,
        report.final_loss,
        out.display()
    );
    Ok(())
}

/// Applies `--max-query-vertices` (a runtime resource-budget override)
/// to a loaded model.
fn apply_budget_cap(model: &mut NeurSc, opts: &Opts) -> Result<(), CliError> {
    if let Some(cap) = opt_num::<usize>(opts, "max-query-vertices")? {
        model.config.budget.max_query_vertices = Some(cap);
    }
    Ok(())
}

fn cmd_estimate(opts: &Opts) -> Result<(), CliError> {
    let mut model = load_model(Path::new(req(opts, "model")?))?;
    apply_threads(&mut model, opts)?;
    apply_budget_cap(&mut model, opts)?;
    let g = load_graph(Path::new(req(opts, "data")?))?;
    let q = load_graph(Path::new(req(opts, "query")?))?;
    let mut obs = ObsSetup::from_opts(opts)?;
    // --inject-panic routes through the batch pipeline (fault plans are
    // keyed by batch slot), proving panic containment maps to exit 7.
    let d = match opt_num::<usize>(opts, "inject-panic")? {
        Some(slot) => {
            obs.ctx.faults = FaultPlan::new().panic_on(slot);
            model
                .estimate_batch(std::slice::from_ref(&q), &g, &obs.ctx)
                .pop()
                .expect("one result per query")?
        }
        None => model.estimate_detailed_with(&q, &g, &obs.ctx)?,
    };
    obs.export()?;
    println!("{:.1}", d.count);
    eprintln!(
        "({} substructures{})",
        d.n_substructures,
        if d.trivially_zero {
            ", trivially zero"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_evaluate(opts: &Opts) -> Result<(), CliError> {
    let mut model = load_model(Path::new(req(opts, "model")?))?;
    apply_threads(&mut model, opts)?;
    apply_budget_cap(&mut model, opts)?;
    let g = load_graph(Path::new(req(opts, "data")?))?;
    let labeled = load_labeled_dir(Path::new(req(opts, "queries")?))?;
    if labeled.is_empty() {
        return Err(CliError::other("no labeled queries found"));
    }
    // Batched path: one shared context caches the data-graph profiles and
    // fans the whole query set out over the configured workers. Failed
    // queries are isolated per item: they are reported to stderr and
    // excluded from aggregation instead of aborting the run.
    let queries: Vec<Graph> = labeled.iter().map(|(q, _)| q.clone()).collect();
    let mut obs = ObsSetup::from_opts(opts)?;
    if let Some(slot) = opt_num::<usize>(opts, "inject-panic")? {
        obs.ctx.faults = FaultPlan::new().panic_on(slot);
    }
    let details = model.estimate_batch(&queries, &g, &obs.ctx);
    obs.export()?;
    let mut errs: Vec<f64> = Vec::new();
    let (mut budget, mut panicked, mut invalid, mut other) = (0usize, 0usize, 0usize, 0usize);
    for (i, ((_, c), d)) in labeled.iter().zip(&details).enumerate() {
        match d {
            Ok(d) => errs.push(neursc::core::q_error(d.count, *c as f64)),
            Err(e) => {
                match e {
                    NeurScError::Budget { .. } => budget += 1,
                    NeurScError::Panicked { .. } => panicked += 1,
                    NeurScError::InvalidQuery { .. } => invalid += 1,
                    _ => other += 1,
                }
                eprintln!("q{i}: {}", chain(e));
            }
        }
    }
    let failed = budget + panicked + invalid + other;
    println!(
        "excluded {failed} of {} (budget {budget}, panicked {panicked}, \
         invalid_query {invalid}, other {other})",
        labeled.len()
    );
    if errs.is_empty() {
        return Err(CliError::other("every query failed"));
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let gmean = (errs.iter().map(|e| e.ln()).sum::<f64>() / errs.len() as f64).exp();
    let max = errs.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{} queries ({failed} failed): mean q-error {mean:.2}, geometric mean {gmean:.2}, max {max:.2}",
        errs.len()
    );
    Ok(())
}

/// Parses a comma-separated list of 16-hex-digit request digests
/// (`--quarantine`, `--chaos-abort`).
fn hex_list(opts: &Opts, key: &str) -> Result<Vec<u64>, CliError> {
    let Some(v) = opts.get(key) else {
        return Ok(Vec::new());
    };
    neursc::serve::supervise::parse_quarantine(v)
        .map_err(|e| CliError::usage(format!("bad value for --{key}: {e}")))
}

/// The supervision loop: respawn this executable as a worker (same argv
/// minus `--supervise`, plus an explicit `--journal` so both sides agree
/// on the path) and restart it per the crash policy. Never returns — the
/// supervisor's exit code is the worker's verdict.
fn cmd_supervise(opts: &Opts) -> Result<(), CliError> {
    let journal = PathBuf::from(
        opts.get("journal")
            .map(String::as_str)
            .unwrap_or("neursc.journal"),
    );
    let cfg = neursc::serve::supervise::SuperviseConfig {
        journal: journal.clone(),
        max_restarts: num(opts, "max-restarts", 5u32)?,
        backoff_base: std::time::Duration::from_millis(num(opts, "backoff-base-ms", 100u64)?),
        backoff_cap: std::time::Duration::from_millis(num(opts, "backoff-cap-ms", 5_000u64)?),
        stable_after: std::time::Duration::from_millis(num(opts, "stable-after-ms", 10_000u64)?),
    };
    // Reconstruct the worker's argv from our own, dropping --supervise
    // (a bare boolean flag) and pinning --journal explicitly.
    let mut worker_args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--supervise")
        .collect();
    if !opts.contains_key("journal") {
        worker_args.push("--journal".to_string());
        worker_args.push(journal.display().to_string());
    }
    let code = neursc::serve::supervise::supervise(&worker_args, &cfg);
    std::process::exit(code);
}

fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    if opts.contains_key("supervise") {
        return cmd_supervise(opts);
    }
    let mut model = load_model(Path::new(req(opts, "model")?))?;
    apply_threads(&mut model, opts)?;
    let g = match (opts.get("data"), opts.get("graph-store")) {
        (Some(_), Some(_)) => {
            return Err(CliError::usage(
                "--data and --graph-store are mutually exclusive",
            ));
        }
        (Some(p), None) => load_graph(Path::new(p))?,
        (None, Some(p)) => {
            // Resident mode: the daemon answers from memory; the open
            // verifies the image checksum before the first estimate.
            let store =
                neursc::store::GraphStore::open(Path::new(p), neursc::store::AccessMode::Resident)?;
            store.to_graph()?
        }
        (None, None) => {
            return Err(CliError::usage(
                "missing required --data (or --graph-store)",
            ));
        }
    };

    let listen = match opts.get("unix") {
        Some(_) if opts.contains_key("listen") => {
            return Err(CliError::usage(
                "--listen and --unix are mutually exclusive",
            ));
        }
        #[cfg(unix)]
        Some(p) => Listen::Unix(PathBuf::from(p)),
        #[cfg(not(unix))]
        Some(_) => return Err(CliError::usage("--unix is not supported on this platform")),
        None => Listen::Tcp(
            opts.get("listen")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        ),
    };
    let backend = match opts.get("backend") {
        None => BackendChoice::West,
        Some(s) => BackendChoice::parse(s).ok_or_else(|| {
            CliError::usage(format!("bad value for --backend: {s:?} (west|sample|auto)"))
        })?,
    };
    let router = RouterConfig {
        volume_cap: num(
            opts,
            "router-volume-cap",
            RouterConfig::default().volume_cap,
        )?,
        cands_per_ms: num(
            opts,
            "router-cands-per-ms",
            RouterConfig::default().cands_per_ms,
        )?,
    };
    let cfg = ServeConfig {
        listen,
        threads: model.config.parallelism.threads,
        max_batch: num(opts, "max-batch", 8)?,
        batch_wait: std::time::Duration::from_micros(num(opts, "batch-wait-us", 500u64)?),
        max_pending: num(opts, "max-pending", 1024)?,
        max_frame_bytes: num(opts, "max-frame-bytes", 1 << 20)?,
        max_query_vertices: opt_num(opts, "max-query-vertices")?,
        cache_capacity: opt_num(opts, "cache-capacity")?,
        chaos_panic: num_list(opts, "chaos-panic")?,
        chaos_starve: num_list(opts, "chaos-starve")?,
        chaos_abort: hex_list(opts, "chaos-abort")?,
        snapshot_path: opts.get("snapshot").map(PathBuf::from),
        snapshot_interval: opt_num::<u64>(opts, "snapshot-interval-ms")?
            .map(std::time::Duration::from_millis),
        journal_path: opts.get("journal").map(PathBuf::from),
        quarantine: hex_list(opts, "quarantine")?,
        restarts: num(opts, "restart-count", 0u64)?,
        backend,
        router,
    };

    // The daemon always records: `stats` exports the metrics registry
    // over the wire, and --trace-json/--metrics-json dump it at drain.
    let obs = ObsSetup::from_opts(opts)?;
    let recorder = obs
        .recorder
        .clone()
        .unwrap_or_else(|| Arc::new(Recorder::new()));
    let server = serve(model, g, cfg, recorder).map_err(|e| CliError::io(format!("serve: {e}")))?;
    println!("listening on {}", server.local_addr());
    server
        .join()
        .map_err(|e| CliError::other(format!("serve: {e}")))?;
    obs.export()?;
    Ok(())
}

fn cmd_graph_pack(opts: &Opts) -> Result<(), CliError> {
    let data = Path::new(req(opts, "data")?);
    let out = PathBuf::from(req(opts, "out")?);
    let g = load_graph(data)?;
    let bytes = neursc::store::pack_graph(&g, &out)?;
    println!(
        "packed {} -> {} ({} bytes, |V|={} |E|={} |L|={})",
        data.display(),
        out.display(),
        bytes,
        g.n_vertices(),
        g.n_edges(),
        g.n_labels()
    );
    Ok(())
}

fn cmd_graph_info(opts: &Opts) -> Result<(), CliError> {
    let path = Path::new(req(opts, "store")?);
    // Streamed open keeps `graph info` cheap on images larger than RAM;
    // every open mode still verifies the full checksum first.
    let store =
        neursc::store::GraphStore::open(path, neursc::store::AccessMode::streamed_default())?;
    let file_len = std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
    let mut prefix = vec![0u8; file_len.min(64) as usize];
    {
        use std::io::Read as _;
        let mut f = std::fs::File::open(path)
            .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
        f.read_exact(&mut prefix)
            .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
    }
    let layout = neursc::store::format::parse_header(&prefix, file_len, Some(path))?;
    println!("{}: NSCS v1, checksum verified", path.display());
    println!(
        "  vertices {}  edges {}  labels {}  max-degree {}  checksum {:016x}",
        store.n_vertices(),
        store.n_edges(),
        store.n_labels(),
        store.max_degree(),
        layout.checksum
    );
    Ok(())
}

fn cmd_fuzz(opts: &Opts) -> Result<(), CliError> {
    let cfg = FuzzConfig {
        cases: num(opts, "cases", 100u64)?,
        seed: num(opts, "seed", 42u64)?,
        minimize: opts.contains_key("minimize"),
    };
    let out_dir = opts.get("out-dir").map(PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::io(format!("create {}: {e}", dir.display())))?;
    }

    println!(
        "fuzzing {} cases (seed {}, minimize: {})",
        cfg.cases, cfg.seed, cfg.minimize
    );
    let report = run_fuzz_with(&cfg, &mut |i, violations| {
        if (i + 1) % 100 == 0 {
            println!(
                "  {} / {} cases, {} violations",
                i + 1,
                cfg.cases,
                violations
            );
        }
    });

    for (k, outcome) in report.outcomes.iter().enumerate() {
        eprintln!(
            "violation {} (case {}, seed {}): {}",
            k + 1,
            outcome.index,
            outcome.case_seed,
            outcome.violation
        );
        if let Some(dir) = &out_dir {
            let path = dir.join(format!(
                "{}-{}.case",
                outcome.violation.invariant, outcome.case_seed
            ));
            std::fs::write(&path, &outcome.case_text)
                .map_err(|e| CliError::io(format!("write {}: {e}", path.display())))?;
            eprintln!("  written to {}", path.display());
        }
    }
    if report.gen_failures > 0 {
        eprintln!("{} cases failed to generate", report.gen_failures);
    }
    println!(
        "{} cases checked: {} violations",
        report.cases_run,
        report.outcomes.len()
    );
    if report.clean() {
        Ok(())
    } else {
        Err(CliError::other(format!(
            "{} invariant violations (run `neursc-cli fuzz --seed {} --minimize` to shrink)",
            report.outcomes.len(),
            cfg.seed
        )))
    }
}
