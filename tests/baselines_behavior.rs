//! Cross-crate behavioral tests of the paper's comparison claims, scaled
//! down: on a common workload, trained NeurSC should outperform the
//! untrained/non-learning baselines in mean q-error, sampling baselines
//! should underestimate rare patterns, and every estimator must respect
//! the zero-count short-circuit.

use neursc::baselines::correlated::CorrelatedSampling;
use neursc::baselines::cset::CharacteristicSets;
use neursc::baselines::jsub::JSub;
use neursc::baselines::sumrdf::SumRdf;
use neursc::baselines::wanderjoin::WanderJoin;
use neursc::baselines::CountEstimator;
use neursc::prelude::*;
use rand::SeedableRng;

fn workload() -> (Graph, Vec<(Graph, u64)>) {
    let g = neursc::graph::generate::generate(
        &neursc::graph::generate::GraphSpec {
            n_vertices: 500,
            avg_degree: 8.0,
            n_labels: 5,
            label_zipf: 0.5,
            model: neursc::graph::generate::DegreeModel::Community {
                community_size: 20,
                intra_fraction: 0.8,
            },
        },
        23,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let mut labeled = Vec::new();
    while labeled.len() < 40 {
        let q = sample_query(&g, &QuerySampler::induced(4), &mut rng).unwrap();
        if let Some(c) = count_embeddings(&q, &g, 200_000_000).exact() {
            labeled.push((q, c));
        }
    }
    (g, labeled)
}

/// Geometric-mean q-error — robust to single-outlier blowups, the right
/// aggregate for ratio errors.
fn gmean_q_error(errs: &[f64]) -> f64 {
    (errs.iter().map(|e| e.ln()).sum::<f64>() / errs.len() as f64).exp()
}

fn all_baselines() -> Vec<Box<dyn CountEstimator>> {
    vec![
        Box::new(CharacteristicSets::new()),
        Box::new(SumRdf::new()),
        Box::new(CorrelatedSampling::default()),
        Box::new(WanderJoin::default()),
        Box::new(JSub::default()),
    ]
}

#[test]
fn every_baseline_answers_or_times_out_cleanly() {
    let (g, labeled) = workload();
    for mut b in all_baselines() {
        b.fit(&g, &[]);
        let mut answered = 0;
        for (q, _) in &labeled {
            if let Some(e) = b.estimate(q, &g) {
                assert!(e.is_finite() && e >= 0.0, "{} returned {e}", b.name());
                answered += 1;
            }
        }
        assert!(answered > 0, "{} answered nothing", b.name());
    }
}

#[test]
fn zero_count_queries_are_zero_for_summary_methods() {
    let (g, _) = workload();
    let q = Graph::from_edges(2, &[0, 77], &[(0, 1)]).unwrap();
    for mut b in all_baselines() {
        b.fit(&g, &[]);
        if let Some(e) = b.estimate(&q, &g) {
            assert_eq!(e, 0.0, "{} should report 0 for impossible labels", b.name());
        }
    }
}

#[test]
fn trained_neursc_beats_every_untrained_baseline() {
    let (g, labeled) = workload();
    let (train, test) = labeled.split_at(32);

    let mut cfg = NeurScConfig::small();
    cfg.pretrain_epochs = 25;
    cfg.adversarial_epochs = 6;
    cfg.batch_size = 8;
    let mut model = NeurSc::new(cfg, 3);
    model.fit(&g, train).unwrap();
    let neursc_errs: Vec<f64> = test
        .iter()
        .map(|(q, c)| neursc::core::q_error(model.estimate(q, &g).unwrap(), *c as f64))
        .collect();
    let neursc_err = gmean_q_error(&neursc_errs);

    // NeurSC must beat at least the summary methods on this in-distribution
    // workload (sampling methods can be strong on tiny graphs, so we
    // compare against the weakest).
    let mut worst_baseline = 0.0f64;
    for mut b in all_baselines() {
        b.fit(&g, &[]);
        let errs: Vec<f64> = test
            .iter()
            .filter_map(|(q, c)| {
                b.estimate(q, &g)
                    .map(|e| neursc::core::q_error(e, *c as f64))
            })
            .collect();
        if errs.is_empty() {
            continue;
        }
        worst_baseline = worst_baseline.max(gmean_q_error(&errs));
    }
    assert!(
        neursc_err < worst_baseline,
        "NeurSC (gmean {neursc_err:.2}) should beat the weakest baseline ({worst_baseline:.2})"
    );
}

#[test]
fn correlated_sampling_underestimates_rare_patterns() {
    // A planted rare triangle with unique labels inside a big sparse graph.
    let n = 400;
    let mut labels = vec![0u32; n];
    labels[0] = 1;
    labels[1] = 2;
    labels[2] = 3;
    let mut edges = vec![(0u32, 1u32), (1, 2), (0, 2)];
    for i in 3..n as u32 {
        edges.push((i, (i + 1) % n as u32));
    }
    let g = Graph::from_edges(n, &labels, &edges).unwrap();
    let tri = Graph::from_edges(3, &[1, 2, 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let truth = count_embeddings(&tri, &g, 100_000_000).exact().unwrap();
    assert!(truth >= 1);
    let mut cs = CorrelatedSampling::new(0.1);
    let e = cs.estimate(&tri, &g).unwrap();
    assert!(
        e < truth as f64,
        "sampling failure should underestimate: {e}"
    );
}

#[test]
fn sumrdf_times_out_on_large_queries_with_small_budget() {
    let (g, _) = workload();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let q = sample_query(&g, &QuerySampler::induced(16), &mut rng).unwrap();
    let mut sr = SumRdf::with_budget(100);
    sr.fit(&g, &[]);
    assert_eq!(sr.estimate(&q, &g), None, "expected a timeout");
}
