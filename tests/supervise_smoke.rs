//! Kill drill for `neursc-cli serve --supervise`: SIGKILL the worker
//! mid-traffic and assert the whole recovery story end to end —
//! supervised restart, warm restore from the snapshot (bit-identical
//! results across the crash), crash-loop quarantine of a poison query
//! after two consecutive aborts, and a clean drain (exit 0) afterwards.
//!
//! Unix-only: the drill needs `kill -9` and a Unix socket (whose path,
//! unlike an ephemeral TCP port, survives the restart).
#![cfg(unix)]

use neursc::core::persist::save_model;
use neursc::core::{NeurSc, NeurScConfig};
use neursc::graph::generate::erdos_renyi;
use neursc::graph::io::save_graph;
use neursc::serve::client::{self, Client};
use neursc::serve::journal::digest_queries;
use neursc::serve::json::{self, Json};
use neursc::serve::{RetryClient, RetryPolicy};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Collects the supervisor's (and, via inherited stdio, the workers')
/// stdout lines on a background thread.
struct StdoutLines {
    rx: mpsc::Receiver<String>,
    seen: Vec<String>,
}

impl StdoutLines {
    fn spawn(child: &mut Child) -> StdoutLines {
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        StdoutLines {
            rx,
            seen: Vec::new(),
        }
    }

    /// Blocks until a line satisfying `pred` arrives (panics on timeout);
    /// returns it. Every line is also retained in `seen`.
    fn wait_for(&mut self, what: &str, pred: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .unwrap_or_else(|| panic!("timed out waiting for {what}; saw {:?}", self.seen));
            match self.rx.recv_timeout(remaining) {
                Ok(line) => {
                    self.seen.push(line.clone());
                    if pred(&line) {
                        return line;
                    }
                }
                Err(_) => panic!("stdout closed waiting for {what}; saw {:?}", self.seen),
            }
        }
    }
}

fn wait_for_exit(child: &mut Child, timeout: Duration) -> i32 {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code().expect("exit code");
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("supervisor did not exit within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn worker_pid(line: &str) -> u32 {
    line.trim()
        .strip_prefix("supervisor: worker pid ")
        .and_then(|p| p.parse().ok())
        .unwrap_or_else(|| panic!("unexpected pid line: {line:?}"))
}

fn estimate_bits(reply: &str) -> u64 {
    let v = json::parse(reply).expect("reply parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{reply}");
    v.get("estimate")
        .and_then(Json::as_f64)
        .expect("estimate field")
        .to_bits()
}

/// Reads one `counters` entry out of a `stats` reply.
fn stats_counter(reply: &str, name: &str) -> u64 {
    let v = json::parse(reply).expect("stats parses");
    v.get("stats")
        .and_then(|s| s.get("metrics"))
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Connects a plain client, retrying while the worker is between
/// incarnations.
fn connect_patiently(sock: &Path) -> Client {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match Client::connect_unix(sock) {
            Ok(c) => return c,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("could not connect to {}: {e}", sock.display()),
        }
    }
}

#[test]
fn supervised_daemon_survives_sigkill_and_quarantines_poison() {
    let dir = std::env::temp_dir().join("neursc_supervise_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let data = erdos_renyi(100, 300, 3, 7);
    let data_path = dir.join("data.graph");
    save_graph(&data, &data_path).unwrap();
    let model_path = dir.join("model.txt");
    save_model(&NeurSc::new(NeurScConfig::small(), 42), &model_path).unwrap();
    let sock = dir.join("daemon.sock");
    let snap = dir.join("warm.snap");
    let journal = dir.join("admission.journal");

    // The poison query: its content digest is handed to --chaos-abort, so
    // serving it aborts the worker in *every* incarnation — exactly the
    // crash-loop shape the quarantine exists for.
    let q = erdos_renyi(4, 4, 3, 11);
    let poison = erdos_renyi(5, 6, 3, 13);
    let poison_digest = digest_queries(&[poison.content_fingerprint()]);

    let mut child = Command::new(env!("CARGO_BIN_EXE_neursc_cli"))
        .arg("serve")
        .arg("--supervise")
        .arg("--model")
        .arg(&model_path)
        .arg("--data")
        .arg(&data_path)
        .arg("--unix")
        .arg(&sock)
        .arg("--snapshot")
        .arg(&snap)
        .arg("--journal")
        .arg(&journal)
        .args(["--backoff-base-ms", "10"])
        .args(["--backoff-cap-ms", "50"])
        .args(["--stable-after-ms", "60000"])
        .args(["--max-restarts", "10"])
        .args(["--chaos-abort", &format!("{poison_digest:016x}")])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn supervised daemon");
    let mut lines = StdoutLines::spawn(&mut child);

    let pid_line = lines.wait_for("first worker pid", |l| {
        l.starts_with("supervisor: worker pid ")
    });
    let pid1 = worker_pid(&pid_line);
    lines.wait_for("first listen banner", |l| l.starts_with("listening on "));

    // --- Warm up, snapshot, then SIGKILL the worker mid-traffic. -------
    let policy = RetryPolicy {
        max_attempts: 12,
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(200),
        jitter_seed: 7,
    };
    let mut rc = RetryClient::unix(&sock, policy);
    let before = estimate_bits(&rc.estimate(1, &q, None, None).unwrap());

    let mut admin = connect_patiently(&sock);
    let snap_reply = admin.request(&client::snapshot_request(2)).unwrap();
    assert!(
        snap_reply.contains("snapshot_bytes"),
        "snapshot verb failed: {snap_reply}"
    );
    assert!(snap.exists(), "snapshot file written");
    drop(admin);

    let killed = Command::new("kill")
        .args(["-9", &pid1.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {pid1}");

    // The supervisor restarts the worker; the retrying client rides out
    // the gap and the answer is bit-identical — the snapshot restored the
    // same warm caches, and the estimator is deterministic.
    let after = estimate_bits(&rc.estimate(3, &q, None, None).unwrap());
    assert_eq!(after, before, "estimate changed across SIGKILL + restart");
    let pid_line = lines.wait_for("second worker pid", |l| {
        l.starts_with("supervisor: worker pid ") && worker_pid(l) != pid1
    });
    assert_ne!(worker_pid(&pid_line), pid1);

    let mut admin = connect_patiently(&sock);
    let stats = admin.request(&client::stats_request(4)).unwrap();
    assert_eq!(
        stats_counter(&stats, "serve.restarts"),
        1,
        "restart count after the kill: {stats}"
    );
    assert_eq!(
        stats_counter(&stats, "snapshot.restore_outcome.warm"),
        1,
        "worker must have warm-restored from the snapshot: {stats}"
    );
    drop(admin);

    // --- Crash-loop quarantine: the poison aborts two consecutive -------
    // workers, the third incarnation rejects it with a typed error.
    let reply = rc.estimate(5, &poison, None, None).unwrap();
    let v = json::parse(&reply).expect("poison reply parses");
    assert_eq!(
        v.get("kind").and_then(Json::as_str),
        Some("crash_suspect"),
        "poison query must end quarantined, got: {reply}"
    );
    lines.wait_for("quarantine notice", |l| {
        l.starts_with("supervisor: quarantined digest")
    });

    // Bystanders keep serving, still bit-identical.
    let again = estimate_bits(&rc.estimate(6, &q, None, None).unwrap());
    assert_eq!(again, before, "bystander result drifted after quarantine");

    // The quarantined digest stays rejected without crashing anything.
    let reply = rc.estimate(7, &poison, None, None).unwrap();
    assert!(reply.contains("crash_suspect"), "{reply}");

    let mut admin = connect_patiently(&sock);
    let stats = admin.request(&client::stats_request(8)).unwrap();
    assert!(
        stats_counter(&stats, "serve.restarts") >= 3,
        "kill + two aborts: {stats}"
    );
    assert!(
        stats_counter(&stats, "journal.quarantined") >= 1,
        "quarantined admissions counted: {stats}"
    );

    // --- Clean drain ends supervision with exit 0. ----------------------
    let bye = admin.request(&client::shutdown_request(9)).unwrap();
    assert!(bye.contains("\"draining\":true"), "{bye}");
    lines.wait_for("clean-drain notice", |l| {
        l.contains("worker drained cleanly")
    });
    let code = wait_for_exit(&mut child, Duration::from_secs(30));
    assert_eq!(code, 0, "supervisor exit code");

    std::fs::remove_dir_all(&dir).ok();
}
