//! Fault-injection acceptance suite for the fault-isolated pipeline.
//!
//! The contract under test (DESIGN.md, "Failure semantics"): poisoning k
//! items of an n-item batch yields exactly n − k `Ok` estimates that are
//! **bit-identical** to a clean sequential run, plus k typed errors — at
//! any thread count. Corrupt model files fail loading with a typed
//! corruption error before any weight is copied, and divergent training
//! rolls back to the best finite checkpoint.

use neursc::core::persist::{load_model, save_model};
use neursc::core::{FaultPlan, GraphContext, NeurSc, NeurScConfig, NeurScError};
use neursc::prelude::*;
use rand::SeedableRng;

/// Data graph + 32 well-formed queries, deterministic in `seed`.
fn workload(seed: u64) -> (Graph, Vec<Graph>) {
    let g = neursc::graph::generate::erdos_renyi(150, 450, 4, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let queries = (0..32)
        .map(|_| sample_query(&g, &QuerySampler::induced(4), &mut rng).unwrap())
        .collect();
    (g, queries)
}

fn small_config(threads: usize) -> NeurScConfig {
    let mut cfg = NeurScConfig::small();
    cfg.parallelism.threads = threads;
    // A size cap the oversized poison query will violate.
    cfg.budget.max_query_vertices = Some(16);
    cfg
}

/// A connected 20-vertex path — over the 16-vertex cap above.
fn oversized_query() -> Graph {
    let labels = vec![0; 20];
    let edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
    Graph::from_edges(20, &labels, &edges).unwrap()
}

const PANIC_ITEM: usize = 3;
const STARVED_ITEM: usize = 11;
const EMPTY_ITEM: usize = 17;
const OVERSIZED_ITEM: usize = 26;

#[test]
fn poisoned_batch_is_contained_and_bit_identical_at_any_thread_count() {
    let (g, clean) = workload(7);

    // Clean sequential baseline: per-query estimates at threads = 1 with no
    // faults. These are the bits every batched run must reproduce.
    let baseline_model = NeurSc::new(small_config(1), 42);
    let ctx = GraphContext::new();
    let baseline: Vec<u64> = clean
        .iter()
        .map(|q| baseline_model.estimate_with(q, &g, &ctx).unwrap().to_bits())
        .collect();

    // Poison 4 of the 32 items: a worker panic, a starved filtering budget,
    // a 0-vertex query, and a query over the size cap.
    let mut batch = clean.clone();
    batch[EMPTY_ITEM] = Graph::from_edges(0, &[], &[]).unwrap();
    batch[OVERSIZED_ITEM] = oversized_query();
    let poisons = [PANIC_ITEM, STARVED_ITEM, EMPTY_ITEM, OVERSIZED_ITEM];

    for threads in [1, 2, 4] {
        let model = NeurSc::new(small_config(threads), 42);
        let ctx = GraphContext::with_faults(
            FaultPlan::new()
                .panic_on(PANIC_ITEM)
                .starve_budget_on(STARVED_ITEM),
        );
        let details = model.estimate_batch(&batch, &g, &ctx);
        assert_eq!(details.len(), 32);

        let ok = details.iter().filter(|d| d.is_ok()).count();
        assert_eq!(ok, 28, "threads={threads}: expected 28 surviving items");

        for (i, d) in details.iter().enumerate() {
            match d {
                Ok(d) if !poisons.contains(&i) => {
                    assert_eq!(
                        d.count.to_bits(),
                        baseline[i],
                        "threads={threads}: item {i} not bit-identical to the \
                         clean sequential baseline"
                    );
                }
                Ok(_) => panic!("threads={threads}: poisoned item {i} returned Ok"),
                Err(e) => {
                    assert!(
                        poisons.contains(&i),
                        "threads={threads}: clean item {i} failed: {e}"
                    );
                }
            }
        }

        // Each poison produces its specific typed error.
        assert!(
            matches!(
                &details[PANIC_ITEM],
                Err(NeurScError::Panicked { item, message })
                    if *item == PANIC_ITEM && message.contains("injected fault")
            ),
            "got {:?}",
            details[PANIC_ITEM]
        );
        assert!(matches!(
            &details[STARVED_ITEM],
            Err(NeurScError::Budget { .. })
        ));
        assert!(matches!(
            &details[EMPTY_ITEM],
            Err(NeurScError::InvalidQuery { .. })
        ));
        assert!(matches!(
            &details[OVERSIZED_ITEM],
            Err(NeurScError::Budget { .. })
        ));
    }
}

#[test]
fn prepare_batch_contains_faults_the_same_way() {
    let (g, clean) = workload(13);
    let labeled: Vec<(Graph, u64)> = clean.into_iter().take(8).map(|q| (q, 5)).collect();
    let model = NeurSc::new(small_config(2), 1);
    let ctx = GraphContext::with_faults(FaultPlan::new().panic_on(2).starve_budget_on(5));
    let prepared = model.prepare_batch(&g, &labeled, &ctx);
    assert_eq!(prepared.len(), 8);
    for (i, p) in prepared.iter().enumerate() {
        match i {
            2 => assert!(matches!(p, Err(NeurScError::Panicked { item: 2, .. }))),
            5 => assert!(matches!(p, Err(NeurScError::Budget { .. }))),
            _ => assert!(p.is_ok(), "item {i} should survive"),
        }
    }
}

#[test]
fn fit_counts_unusable_training_queries_instead_of_aborting() {
    let (g, clean) = workload(21);
    let mut labeled: Vec<(Graph, u64)> = clean.into_iter().take(8).map(|q| (q, 5)).collect();
    labeled[4] = (Graph::from_edges(0, &[], &[]).unwrap(), 0); // poisoned
    let mut cfg = small_config(1);
    cfg.pretrain_epochs = 2;
    cfg.adversarial_epochs = 1;
    let mut model = NeurSc::new(cfg, 3);
    let report = model.fit(&g, &labeled).unwrap();
    assert_eq!(report.failed_queries, 1);
    assert!(report.diverged_at.is_none());
}

#[test]
fn truncated_model_file_fails_with_typed_corruption_error() {
    let dir = std::env::temp_dir().join("neursc_fault_truncate");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.txt");

    let model = NeurSc::new(NeurScConfig::small(), 9);
    save_model(&model, &path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 37]).unwrap();

    let err = load_model(&path).err().unwrap();
    assert!(err.is_corruption(), "got {err}");
    assert!(err.to_string().contains("model.txt"), "got {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_model_file_fails_with_typed_corruption_error() {
    let dir = std::env::temp_dir().join("neursc_fault_bitflip");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.txt");

    let model = NeurSc::new(NeurScConfig::small(), 9);
    save_model(&model, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() - 200;
    bytes[mid] ^= 0x10; // single bit flip deep in the weights
    std::fs::write(&path, &bytes).unwrap();

    let err = load_model(&path).err().unwrap();
    assert!(err.is_corruption(), "got {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn divergent_training_rolls_back_to_a_finite_model() {
    let (g, clean) = workload(31);
    let labeled: Vec<(Graph, u64)> = clean.iter().take(6).map(|q| (q.clone(), 5)).collect();
    let mut cfg = small_config(1);
    cfg.pretrain_epochs = 6;
    cfg.adversarial_epochs = 0;
    cfg.lr_est = 1e30; // guarantees the first step blows the weights up
    cfg.grad_clip = None; // isolate the rollback path from clipping
    let mut model = NeurSc::new(cfg, 5);
    let report = model.fit(&g, &labeled).unwrap();
    assert!(report.diverged_at.is_some(), "training should diverge");
    assert!(report.rolled_back);
    // The rolled-back model still produces finite estimates.
    let est = model.estimate(&clean[0], &g).unwrap();
    assert!(
        est.is_finite() && est >= 0.0,
        "estimate {est} after rollback"
    );
}

#[test]
fn fail_on_divergence_turns_rollback_into_a_typed_error() {
    let (g, clean) = workload(31);
    let labeled: Vec<(Graph, u64)> = clean.iter().take(6).map(|q| (q.clone(), 5)).collect();
    let mut cfg = small_config(1);
    cfg.pretrain_epochs = 6;
    cfg.adversarial_epochs = 0;
    cfg.lr_est = 1e30;
    cfg.grad_clip = None;
    cfg.fail_on_divergence = true;
    let mut model = NeurSc::new(cfg, 5);
    let err = model.fit(&g, &labeled).err().unwrap();
    assert!(matches!(err, NeurScError::Divergence { .. }), "got {err}");
}

#[test]
fn tiny_filter_step_budget_is_a_typed_budget_error() {
    let (g, clean) = workload(41);
    let mut cfg = small_config(1);
    cfg.budget.max_filter_steps = Some(1);
    let model = NeurSc::new(cfg, 2);
    let err = model.estimate(&clean[0], &g).err().unwrap();
    assert!(matches!(err, NeurScError::Budget { .. }), "got {err}");
}
