//! Replays the regression corpus under `tests/corpus/` through every
//! oracle invariant. Each `.case` file is a minimized reproduction of a
//! bug the differential fuzzer (or a hand analysis) once flushed out; a
//! failure here means a fixed bug has come back.

use neursc::oracle::case::{parse_case, replay_case};
use neursc::oracle::invariants::Oracle;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_nonempty_and_parseable() {
    let files = corpus_files();
    assert!(
        files.len() >= 5,
        "expected at least 5 corpus cases, found {}",
        files.len()
    );
    for path in files {
        let text = std::fs::read_to_string(&path).expect("corpus file must be readable");
        let (case, invariant) = parse_case(&text)
            .unwrap_or_else(|e| panic!("{}: failed to parse: {e}", path.display()));
        assert!(
            invariant.is_some(),
            "{}: corpus cases must name the invariant they regress",
            path.display()
        );
        assert!(case.data.check_invariants(), "{}", path.display());
        assert!(case.query.check_invariants(), "{}", path.display());
    }
}

#[test]
fn every_corpus_case_passes_every_invariant() {
    let oracle = Oracle::new();
    let mut failures = Vec::new();
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file must be readable");
        match replay_case(&text, &oracle) {
            Ok(violations) => {
                for v in violations {
                    failures.push(format!("{}: {v}", path.display()));
                }
            }
            Err(e) => failures.push(format!("{}: replay error: {e}", path.display())),
        }
    }
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}
