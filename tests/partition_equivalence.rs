//! Partitioned estimation over a packed `GraphStore` must reproduce the
//! whole-graph estimate **bit for bit** — for both estimator backends, at
//! every partition count, thread count, and store access mode.
//!
//! This is the system-level contract of the out-of-core path: partitioning
//! changes *where* the candidate work happens (per-core local pruning over
//! a streamed CSR image), never *what* is computed. The WEst forward pass
//! is deterministic, and the sampling backend reseeds per chunk, so both
//! must agree to the last mantissa bit; anything looser would let a
//! partition-boundary bug hide inside a tolerance.

use neursc::core::{estimate_partitioned, GraphContext, NeurSc, NeurScConfig};
use neursc::graph::generate::erdos_renyi;
use neursc::graph::Graph;
use neursc::sample::{SampleConfig, SampleEstimator};
use neursc::store::{encode_graph, AccessMode, GraphStore, PartitionPlan};
use neursc_core::partition::PartitionBackend;
use neursc_core::EstimateDetail;

const THREADS: [usize; 3] = [1, 2, 4];
const PARTITIONS: [usize; 3] = [1, 2, 4];

fn modes() -> [AccessMode; 2] {
    [
        AccessMode::Resident,
        AccessMode::Streamed {
            chunk_edges: 128,
            max_chunks: 3,
        },
    ]
}

/// Bit-level equality of everything a caller can observe (wall-clock
/// report timings excluded — they are honest measurements, not results).
fn assert_bit_identical(part: &EstimateDetail, mono: &EstimateDetail, what: &str) {
    assert_eq!(
        part.count.to_bits(),
        mono.count.to_bits(),
        "{what}: count {} vs {}",
        part.count,
        mono.count
    );
    assert_eq!(part.n_substructures, mono.n_substructures, "{what}");
    assert_eq!(part.trivially_zero, mono.trivially_zero, "{what}");
    assert_eq!(part.degraded, mono.degraded, "{what}");
    match (part.ci, mono.ci) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.low.to_bits(), b.low.to_bits(), "{what}: ci.low");
            assert_eq!(a.high.to_bits(), b.high.to_bits(), "{what}: ci.high");
            assert!(a.contains(mono.count), "{what}: ci excludes its own mean");
        }
        (a, b) => panic!("{what}: ci presence differs: {a:?} vs {b:?}"),
    }
}

fn sweep(backend: &dyn PartitionBackend, q: &Graph, g: &Graph, label: &str) {
    let mono = backend
        .estimate_detailed_with(q, g, &GraphContext::new())
        .unwrap();
    let bytes = encode_graph(g);
    for mode in modes() {
        let store = GraphStore::open_bytes(bytes.clone(), mode).unwrap();
        for k in PARTITIONS {
            let plan = PartitionPlan::contiguous(&store, k);
            for threads in THREADS {
                let d = estimate_partitioned(
                    backend,
                    q,
                    &store,
                    &plan,
                    &GraphContext::new(),
                    None,
                    threads,
                )
                .unwrap();
                assert_bit_identical(
                    &d,
                    &mono,
                    &format!("{label}, {mode:?}, k={k}, threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn west_partitioned_equals_whole_graph_everywhere() {
    let g = erdos_renyi(150, 450, 4, 23);
    let path3 = Graph::from_edges(3, &[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
    let triangle = Graph::from_edges(3, &[0, 1, 1], &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let model = NeurSc::new(NeurScConfig::small(), 13);
    sweep(&model, &path3, &g, "west/path3");
    sweep(&model, &triangle, &g, "west/triangle");
}

#[test]
fn sampling_partitioned_equals_whole_graph_everywhere() {
    let g = erdos_renyi(150, 450, 4, 23);
    let path3 = Graph::from_edges(3, &[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
    let cfg = SampleConfig::from_model_config(&NeurScConfig::small()).with_trials(200);
    let est = SampleEstimator::new(cfg);
    sweep(&est, &path3, &g, "sample/path3");
}

#[test]
fn disconnected_query_partitioned_equals_whole_graph() {
    let g = erdos_renyi(100, 300, 3, 9);
    // An edge component plus an isolated vertex: routes through the §6.1
    // component product on both sides.
    let q = Graph::from_edges(3, &[0, 1, 2], &[(0, 1)]).unwrap();
    let model = NeurSc::new(NeurScConfig::small(), 13);
    sweep(&model, &q, &g, "west/disconnected");
}

#[test]
fn absent_label_is_trivially_zero_partitioned_too() {
    let g = erdos_renyi(80, 200, 2, 5); // labels {0, 1} only
    let q = Graph::from_edges(2, &[0, 7], &[(0, 1)]).unwrap(); // label 7 absent
    let model = NeurSc::new(NeurScConfig::small(), 13);
    let bytes = encode_graph(&g);
    for mode in modes() {
        let store = GraphStore::open_bytes(bytes.clone(), mode).unwrap();
        let plan = PartitionPlan::contiguous(&store, 2);
        let d =
            estimate_partitioned(&model, &q, &store, &plan, &GraphContext::new(), None, 2).unwrap();
        assert!(d.trivially_zero, "{mode:?}");
        assert_eq!(d.count, 0.0, "{mode:?}");
    }
    sweep(&model, &q, &g, "west/absent-label");
}
