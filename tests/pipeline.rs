//! End-to-end integration tests spanning all workspace crates: the full
//! Algorithm 1 pipeline (generate → filter → extract → train → estimate),
//! persistence round-trips, variant behavior, and agreement between the
//! neural estimator and exact counting on easy regimes.

use neursc::core::persist::{load_model, save_model};
use neursc::core::{DiscriminatorMetric, NeurSc, NeurScConfig, Variant};
use neursc::prelude::*;
use rand::SeedableRng;

fn small_world() -> (Graph, Vec<(Graph, u64)>) {
    let g = neursc::graph::generate::generate(
        &neursc::graph::generate::GraphSpec {
            n_vertices: 600,
            avg_degree: 8.0,
            n_labels: 6,
            label_zipf: 0.6,
            model: neursc::graph::generate::DegreeModel::Community {
                community_size: 20,
                intra_fraction: 0.8,
            },
        },
        17,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut labeled = Vec::new();
    while labeled.len() < 30 {
        let q = sample_query(&g, &QuerySampler::induced(4), &mut rng).unwrap();
        if let Some(c) = count_embeddings(&q, &g, 200_000_000).exact() {
            labeled.push((q, c));
        }
    }
    (g, labeled)
}

fn fast_config() -> NeurScConfig {
    let mut c = NeurScConfig::small();
    c.pretrain_epochs = 10;
    c.adversarial_epochs = 3;
    c.batch_size = 8;
    c
}

#[test]
fn full_pipeline_trains_and_beats_constant_baseline() {
    let (g, labeled) = small_world();
    let (train, test) = labeled.split_at(24);
    let mut model = NeurSc::new(fast_config(), 2);
    let report = model.fit(&g, train).unwrap();
    assert!(report.final_loss.is_finite());

    let model_err: f64 = test
        .iter()
        .map(|(q, c)| neursc::core::q_error(model.estimate(q, &g).unwrap(), *c as f64))
        .sum::<f64>()
        / test.len() as f64;
    let const_err: f64 = test
        .iter()
        .map(|(_, c)| neursc::core::q_error(1.0, *c as f64))
        .sum::<f64>()
        / test.len() as f64;
    assert!(
        model_err < const_err,
        "trained NeurSC ({model_err:.2}) should beat the constant-1 estimator ({const_err:.2})"
    );
}

#[test]
fn persistence_roundtrip_preserves_trained_estimates() {
    let (g, labeled) = small_world();
    let mut model = NeurSc::new(fast_config(), 3);
    model.fit(&g, &labeled[..20]).unwrap();

    let dir = std::env::temp_dir().join("neursc_integration_persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trained.model");
    save_model(&model, &path).unwrap();
    let restored = load_model(&path).unwrap();
    for (q, _) in &labeled[20..25] {
        assert_eq!(
            model.estimate(q, &g).unwrap(),
            restored.estimate(q, &g).unwrap()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn extraction_estimates_zero_for_impossible_queries() {
    let (g, _) = small_world();
    // Label 99 does not exist in the data graph.
    let q = Graph::from_edges(3, &[0, 99, 0], &[(0, 1), (1, 2)]).unwrap();
    let model = NeurSc::new(fast_config(), 4);
    let d = model.estimate_detailed(&q, &g).unwrap();
    assert_eq!(d.count, 0.0);
    assert!(d.trivially_zero);
    // The exact counter agrees.
    assert_eq!(count_embeddings(&q, &g, 1_000_000).exact(), Some(0));
}

#[test]
fn all_variants_and_metrics_run_end_to_end() {
    let (g, labeled) = small_world();
    let train = &labeled[..12];
    for variant in [Variant::Full, Variant::DualOnly, Variant::IntraOnly] {
        for metric in [
            DiscriminatorMetric::Wasserstein,
            DiscriminatorMetric::Euclidean,
            DiscriminatorMetric::KullbackLeibler,
            DiscriminatorMetric::JensenShannon,
        ] {
            let mut cfg = fast_config().with_variant(variant).with_metric(metric);
            cfg.pretrain_epochs = 2;
            cfg.adversarial_epochs = 1;
            let mut model = NeurSc::new(cfg, 5);
            model.fit(&g, train).unwrap();
            let e = model.estimate(&train[0].0, &g).unwrap();
            assert!(
                e.is_finite() && e >= 0.0,
                "variant {variant:?} metric {metric:?} produced {e}"
            );
        }
    }
}

#[test]
fn sampled_estimation_is_consistent_with_full_estimation() {
    let (g, labeled) = small_world();
    let mut model = NeurSc::new(fast_config(), 6);
    model.fit(&g, &labeled[..16]).unwrap();
    let q = &labeled[16].0;
    let full = model.estimate(q, &g).unwrap();
    // r_s = 1.0 must agree exactly with the plain estimate.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let sampled = model.estimate_sampled(q, &g, 1.0, &mut rng).unwrap();
    assert!((full - sampled).abs() <= 1e-9 * full.abs().max(1.0));
}

#[test]
fn candidate_filtering_is_complete_on_dataset_scale() {
    // Definition 2's safety property, checked against real embeddings found
    // by the exact matcher on a workload-scale graph.
    let (g, labeled) = small_world();
    for (q, c) in labeled.iter().take(5) {
        let cs = filter_candidates(q, &g, &FilterConfig::default());
        if *c > 0 {
            assert!(!cs.any_empty(), "query with {c} matches got an empty CS");
        }
    }
}

#[test]
fn neursc_trains_under_homomorphism_semantics() {
    // §2.2: the same model handles homomorphism counting — only the labels
    // change. Train on homomorphism counts and check the estimates track
    // the (larger) homomorphism scale rather than the isomorphism one.
    use neursc::workloads::ground_truth::{label_queries_with_semantics, Semantics};
    let (g, _) = small_world();
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let queries: Vec<Graph> = (0..20)
        .map(|_| sample_query(&g, &QuerySampler::induced(4), &mut rng).unwrap())
        .collect();
    let hom = label_queries_with_semantics(&g, &queries, 500_000_000, Semantics::Homomorphism);
    assert!(hom.len() >= 12);
    let (train, test) = hom.split_at(hom.len() - 4);
    let mut model = NeurSc::new(fast_config(), 12);
    model.fit(&g, train).unwrap();
    let mean_q: f64 = test
        .iter()
        .map(|(q, c)| neursc::core::q_error(model.estimate(q, &g).unwrap(), *c as f64))
        .sum::<f64>()
        / test.len() as f64;
    let const_q: f64 = test
        .iter()
        .map(|(_, c)| neursc::core::q_error(1.0, *c as f64))
        .sum::<f64>()
        / test.len() as f64;
    assert!(
        mean_q < const_q,
        "homomorphism-trained model ({mean_q:.1}) should beat constant-1 ({const_q:.1})"
    );
}
