//! Smoke test of `neursc-cli serve`: spawns the real binary as a daemon
//! on loopback, runs a mixed script (valid estimates, chaos-poisoned
//! requests, an over-cap query, a malformed frame, `stats`), asserts the
//! per-request outcomes, and verifies a clean drain (exit code 0).

use neursc::core::persist::save_model;
use neursc::core::{NeurSc, NeurScConfig};
use neursc::graph::generate::erdos_renyi;
use neursc::graph::io::save_graph;
use neursc::graph::Graph;
use neursc::serve::client::{self, Client};
use neursc::serve::json::{self, Json};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Waits for the child to exit cleanly, killing it on timeout.
fn wait_for_exit(child: &mut Child, timeout: Duration) -> i32 {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code().expect("exit code");
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("daemon did not drain within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn expect_kind(reply: &str, kind: &str) {
    let v = json::parse(reply).expect("reply parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{reply}");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some(kind), "{reply}");
}

fn expect_ok(reply: &str) -> f64 {
    let v = json::parse(reply).expect("reply parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{reply}");
    v.get("estimate").and_then(Json::as_f64).expect("estimate")
}

#[test]
fn serve_daemon_smoke() {
    let dir = std::env::temp_dir().join("neursc_serve_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Fixtures on disk, written through the library (same format the CLI
    // loads back).
    let data_path = dir.join("data.graph");
    save_graph(&erdos_renyi(100, 300, 3, 7), &data_path).unwrap();
    let model_path = dir.join("model.txt");
    save_model(&NeurSc::new(NeurScConfig::small(), 42), &model_path).unwrap();

    // Chaos seqs count admitted estimates only: seq 1 panics, seq 2 is
    // starved. The over-cap query and the malformed frame are rejected
    // before admission and consume no seq.
    let mut child = Command::new(env!("CARGO_BIN_EXE_neursc_cli"))
        .arg("serve")
        .arg("--model")
        .arg(&model_path)
        .arg("--data")
        .arg(&data_path)
        .args(["--listen", "127.0.0.1:0"])
        .args(["--max-query-vertices", "16"])
        .args(["--chaos-panic", "1"])
        .args(["--chaos-starve", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn neursc-cli serve");

    let stdout = child.stdout.take().expect("piped stdout");
    let mut first_line = String::new();
    BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("read listen line");
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line:?}"))
        .to_string();

    let q = erdos_renyi(4, 4, 3, 11);
    let labels = vec![0u32; 20];
    let edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
    let oversized = Graph::from_edges(20, &labels, &edges).unwrap();

    let mut c = Client::connect_tcp(&addr).expect("connect");

    // seq 0: a clean estimate.
    let est = expect_ok(&c.request(&client::estimate_request(0, &q)).unwrap());
    assert!(est.is_finite() && est >= 0.0);
    // seq 1: the chaos-panicked slot — typed error, daemon survives.
    expect_kind(
        &c.request(&client::estimate_request(1, &q)).unwrap(),
        "panicked",
    );
    // seq 2: the starved slot degrades to a budget error.
    expect_kind(
        &c.request(&client::estimate_request(2, &q)).unwrap(),
        "budget",
    );
    // Over the admission cap: rejected without consuming a seq.
    expect_kind(
        &c.request(&client::estimate_request(3, &oversized)).unwrap(),
        "budget",
    );
    // A malformed frame gets a typed error and the connection survives.
    let bad = c.request("{not json").unwrap();
    let v = json::parse(&bad).expect("error frame parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
    assert!(v.get("kind").and_then(Json::as_str).is_some(), "{bad}");
    // seq 3: still serving after all of the above.
    expect_ok(&c.request(&client::estimate_request(5, &q)).unwrap());

    // stats reflects the four admitted requests.
    let stats = c.request(&client::stats_request(6)).unwrap();
    let v = json::parse(&stats).expect("stats parses");
    let s = v.get("stats").expect("stats object");
    assert_eq!(s.get("served").and_then(Json::as_u64), Some(4), "{stats}");
    assert!(s.get("model_checksum").and_then(Json::as_str).is_some());

    // Graceful drain: shutdown verb, then the process exits 0.
    let bye = c.request(&client::shutdown_request(7)).unwrap();
    assert!(bye.contains("\"draining\":true"), "{bye}");
    let code = wait_for_exit(&mut child, Duration::from_secs(30));
    assert_eq!(code, 0, "daemon exit code");

    std::fs::remove_dir_all(&dir).ok();
}

/// `--unix` transport end to end through the real binary.
#[cfg(unix)]
#[test]
fn serve_daemon_unix_socket() {
    let dir = std::env::temp_dir().join("neursc_serve_smoke_unix");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data_path = dir.join("data.graph");
    save_graph(&erdos_renyi(60, 150, 3, 5), &data_path).unwrap();
    let model_path = dir.join("model.txt");
    save_model(&NeurSc::new(NeurScConfig::small(), 42), &model_path).unwrap();
    let sock = dir.join("daemon.sock");

    let mut child = Command::new(env!("CARGO_BIN_EXE_neursc_cli"))
        .arg("serve")
        .arg("--model")
        .arg(&model_path)
        .arg("--data")
        .arg(&data_path)
        .arg("--unix")
        .arg(&sock)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn neursc-cli serve --unix");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).unwrap();
    assert!(banner.contains("listening on "), "{banner:?}");

    let q = erdos_renyi(3, 3, 3, 9);
    let mut c = Client::connect_unix(Path::new(&sock)).expect("connect unix");
    expect_ok(&c.request(&client::estimate_request(1, &q)).unwrap());
    c.send_line(&client::shutdown_request(2)).unwrap();
    let _ = c.recv_line().unwrap();
    let code = wait_for_exit(&mut child, Duration::from_secs(30));
    assert_eq!(code, 0, "daemon exit code");
    assert!(!sock.exists(), "socket file removed on drain");

    std::fs::remove_dir_all(&dir).ok();
}

/// `--graph-store`: the daemon answers from a packed NSCS image, and the
/// estimate equals the one a text-loaded daemon (or the library) produces.
#[test]
fn serve_daemon_from_packed_store() {
    let dir = std::env::temp_dir().join("neursc_serve_smoke_store");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let g = erdos_renyi(100, 300, 3, 7);
    let store_path = dir.join("data.nscs");
    neursc::store::pack_graph(&g, &store_path).unwrap();
    let model_path = dir.join("model.txt");
    let model = NeurSc::new(NeurScConfig::small(), 42);
    save_model(&model, &model_path).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_neursc_cli"))
        .arg("serve")
        .arg("--model")
        .arg(&model_path)
        .arg("--graph-store")
        .arg(&store_path)
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn neursc-cli serve --graph-store");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();

    let q = erdos_renyi(4, 4, 3, 11);
    let expected = model.estimate(&q, &g).unwrap();
    let mut c = Client::connect_tcp(&addr).expect("connect");
    let est = expect_ok(&c.request(&client::estimate_request(0, &q)).unwrap());
    assert_eq!(
        est.to_bits(),
        expected.to_bits(),
        "store-served estimate must equal the in-memory one: {est} vs {expected}"
    );
    c.send_line(&client::shutdown_request(1)).unwrap();
    let _ = c.recv_line().unwrap();
    let code = wait_for_exit(&mut child, Duration::from_secs(30));
    assert_eq!(code, 0, "daemon exit code");

    std::fs::remove_dir_all(&dir).ok();
}
