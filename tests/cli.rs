//! End-to-end test of the `neursc_cli` binary: generate → queries → count
//! → train → estimate → evaluate over real files in a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_neursc_cli"))
}

fn run_ok(mut cmd: Command) -> String {
    let out = cmd.output().expect("spawn cli");
    assert!(
        out.status.success(),
        "cli failed: {}\nstdout: {}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join("neursc_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| -> PathBuf { dir.join(name) };

    // generate
    let out = run_ok({
        let mut c = cli();
        c.args([
            "generate",
            "--vertices",
            "300",
            "--degree",
            "8",
            "--labels",
            "5",
            "--seed",
            "3",
            "--out",
        ])
        .arg(p("data.graph"));
        c
    });
    assert!(out.contains("|V|=300"));

    // queries + ground truth
    let out = run_ok({
        let mut c = cli();
        c.args(["queries", "--data"])
            .arg(p("data.graph"))
            .args(["--size", "4", "--count", "10", "--seed", "2", "--out-dir"])
            .arg(p("qs"));
        c
    });
    assert!(out.contains("labeled queries"));
    assert!(p("qs").join("counts.csv").exists());

    // count one query — must match the counts.csv entry for q0
    let csv = std::fs::read_to_string(p("qs").join("counts.csv")).unwrap();
    let q0_count: u64 = csv
        .lines()
        .find(|l| l.starts_with("q0.graph"))
        .and_then(|l| l.split(',').nth(1))
        .and_then(|c| c.trim().parse().ok())
        .expect("q0 count in csv");
    let out = run_ok({
        let mut c = cli();
        c.args(["count", "--data"])
            .arg(p("data.graph"))
            .args(["--query"])
            .arg(p("qs").join("q0.graph"));
        c
    });
    assert_eq!(out.trim().parse::<u64>().unwrap(), q0_count);

    // train
    let out = run_ok({
        let mut c = cli();
        c.args(["train", "--data"])
            .arg(p("data.graph"))
            .args(["--queries"])
            .arg(p("qs"))
            .args(["--epochs", "6", "--out"])
            .arg(p("model.txt"));
        c
    });
    assert!(out.contains("trained on"));

    // estimate
    let out = run_ok({
        let mut c = cli();
        c.args(["estimate", "--model"])
            .arg(p("model.txt"))
            .args(["--data"])
            .arg(p("data.graph"))
            .args(["--query"])
            .arg(p("qs").join("q0.graph"));
        c
    });
    let est: f64 = out.trim().parse().unwrap();
    assert!(est.is_finite() && est >= 0.0);

    // evaluate
    let out = run_ok({
        let mut c = cli();
        c.args(["evaluate", "--model"])
            .arg(p("model.txt"))
            .args(["--data"])
            .arg(p("data.graph"))
            .args(["--queries"])
            .arg(p("qs"));
        c
    });
    assert!(out.contains("mean q-error"));
    assert!(
        out.contains("excluded 0 of"),
        "evaluate prints the exclusion breakdown: {out}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Runs the CLI expecting failure; returns `(exit_code, stderr)`.
fn run_err(mut cmd: Command) -> (i32, String) {
    let out = cmd.output().expect("spawn cli");
    assert!(
        !out.status.success(),
        "cli unexpectedly succeeded\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_rejects_bad_usage() {
    // Usage errors all exit with code 2.
    let (code, _) = run_err({
        let mut c = cli();
        c.arg("frobnicate");
        c
    });
    assert_eq!(code, 2);
    let (code, _) = run_err({
        let mut c = cli();
        c.args(["count", "--data"]);
        c
    });
    assert_eq!(code, 2);
    let (code, _) = run_err(cli());
    assert_eq!(code, 2);
    let (code, stderr) = run_err({
        let mut c = cli();
        c.args(["count", "--query", "x.graph"]); // missing required --data
        c
    });
    assert_eq!(code, 2);
    assert!(stderr.contains("--data"), "stderr: {stderr}");
}

#[test]
fn cli_exit_codes_distinguish_parse_io_and_corruption() {
    let dir = std::env::temp_dir().join("neursc_cli_errcode_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // 4 = I/O: the data file does not exist. The message names the path.
    let missing = dir.join("nope.graph");
    let (code, stderr) = run_err({
        let mut c = cli();
        c.args(["count", "--data"])
            .arg(&missing)
            .args(["--query"])
            .arg(&missing);
        c
    });
    assert_eq!(code, 4, "stderr: {stderr}");
    assert!(stderr.starts_with("error: "), "stderr: {stderr}");
    assert!(stderr.contains("nope.graph"), "stderr: {stderr}");

    // 3 = parse: a syntactically broken graph file, with the line number.
    let broken = dir.join("broken.graph");
    std::fs::write(&broken, "t 2 1\nv 0 0 1\nv 0 0 1\ne 0 1\n").unwrap(); // duplicate v 0
    let (code, stderr) = run_err({
        let mut c = cli();
        c.args(["count", "--data"])
            .arg(&broken)
            .args(["--query"])
            .arg(&broken);
        c
    });
    assert_eq!(code, 3, "stderr: {stderr}");
    assert!(stderr.starts_with("error: "), "stderr: {stderr}");

    // 5 = corruption: a model file whose checksum no longer matches.
    let data = dir.join("data.graph");
    run_ok({
        let mut c = cli();
        c.args([
            "generate",
            "--vertices",
            "60",
            "--degree",
            "4",
            "--labels",
            "3",
            "--out",
        ])
        .arg(&data);
        c
    });
    let qdir = dir.join("qs");
    run_ok({
        let mut c = cli();
        c.args(["queries", "--data"])
            .arg(&data)
            .args(["--size", "3", "--count", "4", "--out-dir"])
            .arg(&qdir);
        c
    });
    let model = dir.join("model.txt");
    run_ok({
        let mut c = cli();
        c.args(["train", "--data"])
            .arg(&data)
            .args(["--queries"])
            .arg(&qdir)
            .args(["--epochs", "2", "--out"])
            .arg(&model);
        c
    });
    // 6 = budget: a runtime query-size cap no 3-vertex query fits under.
    let (code, stderr) = run_err({
        let mut c = cli();
        c.args(["estimate", "--model"])
            .arg(&model)
            .args(["--data"])
            .arg(&data)
            .args(["--query"])
            .arg(qdir.join("q0.graph"))
            .args(["--max-query-vertices", "1"]);
        c
    });
    assert_eq!(code, 6, "stderr: {stderr}");
    assert!(stderr.starts_with("error: "), "stderr: {stderr}");

    // 7 = contained worker panic, surfaced as a typed error.
    let (code, stderr) = run_err({
        let mut c = cli();
        c.args(["estimate", "--model"])
            .arg(&model)
            .args(["--data"])
            .arg(&data)
            .args(["--query"])
            .arg(qdir.join("q0.graph"))
            .args(["--inject-panic", "0"]);
        c
    });
    assert_eq!(code, 7, "stderr: {stderr}");
    assert!(stderr.contains("panic"), "stderr: {stderr}");

    // evaluate isolates a panicked item: exit 0, breakdown names it.
    let out = run_ok({
        let mut c = cli();
        c.args(["evaluate", "--model"])
            .arg(&model)
            .args(["--data"])
            .arg(&data)
            .args(["--queries"])
            .arg(&qdir)
            .args(["--inject-panic", "1"]);
        c
    });
    assert!(
        out.contains("excluded 1 of 4 (budget 0, panicked 1, invalid_query 0, other 0)"),
        "stdout: {out}"
    );

    // Truncate the model file: the header checksum must catch it.
    let text = std::fs::read_to_string(&model).unwrap();
    std::fs::write(&model, &text[..text.len() - 25]).unwrap();
    let (code, stderr) = run_err({
        let mut c = cli();
        c.args(["estimate", "--model"])
            .arg(&model)
            .args(["--data"])
            .arg(&data)
            .args(["--query"])
            .arg(qdir.join("q0.graph"));
        c
    });
    assert_eq!(code, 5, "stderr: {stderr}");
    assert!(stderr.contains("model.txt"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_generate_dataset_preset() {
    let dir = std::env::temp_dir().join("neursc_cli_preset_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("yeast.graph");
    run_ok({
        let mut c = cli();
        c.args(["generate", "--dataset", "yeast", "--out"])
            .arg(&path);
        c
    });
    let g = neursc::graph::io::load_graph(&path).unwrap();
    assert_eq!(g.n_vertices(), 3112);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_graph_pack_info_round_trip_and_corruption() {
    let dir = std::env::temp_dir().join("neursc_cli_store_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.graph");
    let store = dir.join("data.nscs");

    run_ok({
        let mut c = cli();
        c.args([
            "generate",
            "--vertices",
            "200",
            "--degree",
            "6",
            "--labels",
            "4",
            "--seed",
            "9",
            "--out",
        ])
        .arg(&data);
        c
    });

    // pack: text → binary store
    let out = run_ok({
        let mut c = cli();
        c.args(["graph", "pack", "--data"])
            .arg(&data)
            .args(["--out"])
            .arg(&store);
        c
    });
    assert!(out.contains("|V|=200"), "stdout: {out}");
    assert!(store.exists());

    // info: verifies the checksum and reports the header
    let out = run_ok({
        let mut c = cli();
        c.args(["graph", "info", "--store"]).arg(&store);
        c
    });
    assert!(out.contains("checksum verified"), "stdout: {out}");
    assert!(out.contains("vertices 200"), "stdout: {out}");

    // the packed image round-trips to an identical graph
    let g = neursc::graph::io::load_graph(&data).unwrap();
    let opened =
        neursc::store::GraphStore::open(&store, neursc::store::AccessMode::Resident).unwrap();
    assert_eq!(opened.to_graph().unwrap(), g);

    // a flipped byte is detected: exit 5, typed corruption message
    let mut bytes = std::fs::read(&store).unwrap();
    bytes[100] ^= 0x40;
    std::fs::write(&store, &bytes).unwrap();
    let (code, stderr) = run_err({
        let mut c = cli();
        c.args(["graph", "info", "--store"]).arg(&store);
        c
    });
    assert_eq!(code, 5, "stderr: {stderr}");
    assert!(stderr.contains("corrupt"), "stderr: {stderr}");

    // a bare `graph` verb is a usage error
    let (code, _) = run_err({
        let mut c = cli();
        c.arg("graph");
        c
    });
    assert_eq!(code, 2);

    std::fs::remove_dir_all(&dir).ok();
}
