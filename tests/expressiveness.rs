//! Theorem 5.3 integration check: WEst's estimation network is bounded by
//! — and with random weights empirically achieves — the discriminating
//! power of the 1-WL test. We test both directions across crates: the
//! graph crate's reference WL implementation vs. actual WEst forward
//! passes.

use neursc::core::train::prepare_query;
use neursc::core::{NeurSc, NeurScConfig, Variant};
use neursc::graph::wl::wl_distinguishes;
use neursc::prelude::*;

/// Runs WEst (intra-only, extraction off) on `q` against itself as the
/// substructure, returning the scalar log-count output — a graph-level
/// embedding readout through the whole network.
fn west_signature(model: &NeurSc, g: &Graph) -> f64 {
    // Use the graph as both query and data so the network sees it fully.
    let pq = prepare_query(g, g, &model.config, 0).unwrap();
    model.estimate_prepared(&pq).count
}

fn model() -> NeurSc {
    let mut cfg = NeurScConfig::small().with_variant(Variant::NoExtraction);
    cfg.pretrain_epochs = 0;
    cfg.adversarial_epochs = 0;
    NeurSc::new(cfg, 99)
}

#[test]
fn wl_distinguishable_graphs_get_distinct_west_outputs() {
    let m = model();
    // Triangle-with-tail vs. path: separated by 1-WL in ≤ 2 rounds.
    let a = Graph::from_edges(4, &[0; 4], &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
    let b = Graph::from_edges(4, &[0; 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
    assert!(wl_distinguishes(&a, &b, 2));
    let sa = west_signature(&m, &a);
    let sb = west_signature(&m, &b);
    assert!(
        (sa - sb).abs() > 1e-9 * sa.abs().max(1.0),
        "WEst failed to separate WL-distinguishable graphs: {sa} vs {sb}"
    );
}

#[test]
fn wl_equivalent_graphs_get_equal_west_outputs() {
    let m = model();
    // C6 vs. two triangles: 1-WL-equivalent → WEst must agree (its
    // message passing cannot exceed 1-WL).
    let c6 = Graph::from_edges(
        6,
        &[0; 6],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
    )
    .unwrap();
    let tt = Graph::from_edges(
        6,
        &[0; 6],
        &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
    )
    .unwrap();
    assert!(!wl_distinguishes(&c6, &tt, 8));
    let s1 = west_signature(&m, &c6);
    let s2 = west_signature(&m, &tt);
    let rel = (s1 - s2).abs() / s1.abs().max(1e-12);
    assert!(
        rel < 1e-4,
        "WEst separated 1-WL-equivalent graphs: {s1} vs {s2}"
    );
}

#[test]
fn isomorphic_graphs_always_get_equal_outputs() {
    let m = model();
    let a = Graph::from_edges(
        5,
        &[0, 1, 2, 1, 0],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
    )
    .unwrap();
    // Relabeled copy: vertex i of `a` maps to (i+2) mod 5, labels follow
    // (b[(i+2)%5] = a[i] → b = [1, 0, 0, 1, 2]); the 5-cycle maps to itself.
    let b = Graph::from_edges(
        5,
        &[1, 0, 0, 1, 2],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
    )
    .unwrap();
    let sa = west_signature(&m, &a);
    let sb = west_signature(&m, &b);
    let rel = (sa - sb).abs() / sa.abs().max(1e-12);
    assert!(rel < 1e-4, "permutation variance detected: {sa} vs {sb}");
}
