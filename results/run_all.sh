#!/bin/bash
# Regenerates every paper artifact into results/*.txt (see README).
set -u
cd /root/repo
run() {
  name="$1"; shift
  suffix=""
  [ $# -gt 0 ] && suffix="_$1"
  echo "[$(date +%H:%M:%S)] running $name $*"
  cargo run --release -p neursc-bench --bin "$name" -- "$@" > "results/${name}${suffix}.txt" 2>&1 \
    || echo "FAILED: $name $*" >> results/failures.log
}
run table2_datasets
run table3_queries
run fig7_accuracy yeast
run fig8_count_ranges
run fig9_query_chars
run fig10_robustness
run fig11_extraction
run fig12_distance
run fig13_query_time yeast
run table4_training_time
run fig14_tradeoff
for ds in human hprd wordnet dblp eu2005 youtube; do
  run fig7_accuracy "$ds"
  run fig13_query_time "$ds"
done
echo "[$(date +%H:%M:%S)] all done"
