//! Offline stand-in for `crossbeam` (API subset).
//!
//! Provides `crossbeam::scope` / `crossbeam::thread::scope` with the
//! upstream shape — spawn closures receive a `&Scope` argument so threads
//! can spawn siblings — implemented on top of `std::thread::scope`
//! (stabilized in Rust 1.63, after crossbeam's scoped threads were
//! designed). One behavioral difference: a panicking child propagates when
//! the scope joins it rather than being collected into the returned
//! `Result`, so `scope` only returns `Err` if the *main* closure panics —
//! which it cannot, as panics unwind — i.e. the result is always `Ok`.

pub mod thread {
    //! Scoped threads: spawned threads may borrow from the enclosing stack
    //! frame and are all joined before `scope` returns.

    /// Handle to a spawned scoped thread (std's type).
    pub use std::thread::ScopedJoinHandle;

    /// Result alias matching crossbeam's `thread::scope` return type.
    pub type Result<T> = std::thread::Result<T>;

    /// Spawn handle passed to the `scope` closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a fresh `&Scope`
        /// so it can spawn further threads, crossbeam-style.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope for spawning borrowing threads.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let out = crate::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            17
        })
        .unwrap();
        assert_eq!(out, 17);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
                counter.fetch_add(1, Ordering::Relaxed);
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn spawned_threads_can_borrow_locals() {
        let data = [1u64, 2, 3, 4];
        let sums: Vec<u64> = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }
}
