//! Offline stand-in for `criterion` (API subset).
//!
//! Implements the macro and builder surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, `BenchmarkId`,
//! `black_box` — over a simple wall-clock timer: each benchmark is warmed
//! up once, then run `sample_size` times, and the mean/min per-iteration
//! times are printed to stdout. No statistics, plots or baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as in criterion.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean/min per-iteration wall time, filled in by `iter`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `f`, running it `samples` times after one warm-up call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Builder-style default sample count (criterion's `config` form).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_one(&id.into().name, self.default_sample_size, f);
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.name), self.sample_size, f);
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let sample_size = self.sample_size;
        run_one(&format!("{}/{}", self.name, id.name), sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (printing only; retained for API parity).
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, min)) => println!("  {label}: mean {mean:?}, min {min:?} ({samples} samples)"),
        None => println!("  {label}: no measurement (closure never called iter)"),
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut calls = 0;
        g.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| calls += 1);
        });
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).name, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}
