//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Derives a second strategy from each generated value (dependent
    /// generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Discards generated values failing `pred` (resamples, bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            pred,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let intermediate = self.base.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// Always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for primitive `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitives with a canonical full-domain distribution.
pub trait Arbitrary: Sized {
    /// Draws one value covering the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) as i64
    }
}

// Ranges are strategies, exactly as in upstream proptest.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

// A strategy behind a reference is still a strategy (upstream parity).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
