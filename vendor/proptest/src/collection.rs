//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Admissible length specifications for [`vec`]: a fixed length, `a..b`, or
/// `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
