//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use: range/tuple/`collection::vec` strategies, `prop_map`,
//! `prop_flat_map`, `any::<T>()`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//! - **No shrinking**: a failing case reports its iteration index, not a
//!   minimized input. Seeds are deterministic per test, so failures
//!   reproduce exactly.
//! - `.proptest-regressions` files are ignored.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i64..=2, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..=5).prop_flat_map(|n| crate::collection::vec(0u32..100, n))) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_map((a, b) in (0u32..4, 0u32..6).prop_map(|(x, y)| (x * 2, y))) {
            prop_assert!(a % 2 == 0 && a < 8);
            prop_assert!(b < 6);
        }

        #[test]
        fn early_ok_return_works(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_eq!(n.min(9), n);
        }
    }

    #[test]
    fn vec_respects_size_ranges() {
        let mut rng = crate::test_runner::TestRng::for_test("t");
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(0u8..5, 2..4), &mut rng);
            assert!(v.len() == 2 || v.len() == 3);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        // No #[test] attribute on the inner fn: it is invoked manually so
        // the panic is observed by this enclosing test.
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
