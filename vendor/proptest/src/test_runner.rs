//! Test-runner plumbing: configuration, the per-test RNG and the macros.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure value propagated out of a property body (what `prop_assert!`
/// produces, and what `return Ok(())` short-circuits around).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic RNG handed to strategies. Seeded from the test name so
/// every test sees a stable but distinct stream across runs and reorderings.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name → stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0usize..10, (a, b) in (0u32..4, 0u32..4)) {
///         prop_assert!(x < 10);
///         prop_assert_eq!(a / 4, b / 4);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property failed at case {}/{}: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Condition assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", format!($($fmt)*)),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a == b,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a != b,
            "{} != {} failed: both {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}
