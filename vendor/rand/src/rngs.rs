//! Concrete generators. [`StdRng`] is xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 as its authors recommend.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// Not the upstream ChaCha12 `StdRng` — streams differ from real `rand`,
/// but all workspace code relies only on seed-determinism, never on
/// specific stream values.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for state seeded from SplitMix64(0) must be stable
        // across builds (they gate every seeded test in the workspace).
        let mut a = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| a.next_u64()).collect();
        let mut b = StdRng::seed_from_u64(0);
        let again: Vec<u64> = (0..3).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }
}
