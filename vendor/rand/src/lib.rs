//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendor crate
//! provides the exact subset of the `rand` 0.8 surface the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]/`choose`.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — a different stream
//! than upstream's ChaCha12, but the workspace never depends on specific
//! stream values, only on determinism under a fixed seed.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from their "standard" distribution.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Uniform sampling between two bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range called with an empty range");
                // Modulo draw; bias is < 2^-64 · span, negligible for the
                // span sizes this workspace uses.
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range called with an empty range"
                );
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: f32 = rng.gen_range(-1.5..1.5f32);
            assert!((-1.5..1.5).contains(&z));
        }
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn values_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
