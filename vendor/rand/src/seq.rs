//! Slice helpers mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// In-place shuffling and random element choice for slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly random element (`None` on an empty slice).
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input ordered");
    }

    #[test]
    fn shuffle_deterministic_under_seed() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_on_empty_is_none() {
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut StdRng::seed_from_u64(1)).is_none());
        assert!([7].choose(&mut StdRng::seed_from_u64(1)).is_some());
    }
}
