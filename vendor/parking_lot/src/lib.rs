//! Offline stand-in for `parking_lot` (API subset).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free method
//! signatures: `lock()`, `read()` and `write()` return guards directly. A
//! poisoned std lock (a panic while held) aborts with an explicit message
//! instead of returning `Err` — matching parking_lot's "no poisoning"
//! contract closely enough for this workspace.

use std::sync::{self, TryLockError};

/// Guard types are std's, re-exported under parking_lot's names.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader–writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let l = RwLock::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.read(), 400);
    }
}
